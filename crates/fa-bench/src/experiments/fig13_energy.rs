//! Figure 13: energy decomposition normalized to SIMD.

use crate::experiments::campaign::Campaign;
use crate::report::Table;
use crate::runner::SystemKind;

/// Renders Figure 13a (homogeneous workloads).
pub fn report_homogeneous(campaign: &Campaign) -> String {
    render(
        campaign,
        "Figure 13a: energy (data movement / computation / storage access) normalized to SIMD, homogeneous",
    )
}

/// Renders Figure 13b (heterogeneous workloads).
pub fn report_heterogeneous(campaign: &Campaign) -> String {
    render(
        campaign,
        "Figure 13b: energy (data movement / computation / storage access) normalized to SIMD, heterogeneous",
    )
}

fn render(campaign: &Campaign, title: &str) -> String {
    let mut headers = vec!["Workload"];
    let labels: Vec<String> = SystemKind::all()
        .iter()
        .map(|s| format!("{} dm/comp/st (total)", s.label()))
        .collect();
    headers.extend(labels.iter().map(String::as_str));
    let mut table = Table::new(title, &headers);
    for workload in &campaign.workloads {
        let simd_total = campaign
            .expect(workload, SystemKind::Simd)
            .total_energy_j()
            .max(f64::EPSILON);
        let mut row = vec![workload.clone()];
        for system in SystemKind::all() {
            let e = &campaign.expect(workload, system).energy;
            row.push(format!(
                "{:.2}/{:.2}/{:.2} ({:.2})",
                e.data_movement_j / simd_total,
                e.computation_j / simd_total,
                e.storage_access_j / simd_total,
                e.total_j() / simd_total,
            ));
        }
        table.row(row);
    }
    table.render()
}

/// Average energy saving of a FlashAbacus policy relative to SIMD across a
/// campaign (the paper's headline 78.4 % number uses `IntraO3`).
pub fn mean_energy_saving(campaign: &Campaign, system: SystemKind) -> f64 {
    let mut ratios = Vec::new();
    for workload in &campaign.workloads {
        let simd = campaign.expect(workload, SystemKind::Simd).total_energy_j();
        let other = campaign.expect(workload, system).total_energy_j();
        if simd > 0.0 {
            ratios.push(1.0 - other / simd);
        }
    }
    if ratios.is_empty() {
        0.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{bigdata_workload, run_on, ExperimentScale, UnifiedOutcome};
    use fa_workloads::bigdata::BigDataBench;
    use flashabacus::SchedulerPolicy;

    #[test]
    fn energy_report_normalizes_and_saving_is_positive() {
        let apps = bigdata_workload(BigDataBench::Bfs, ExperimentScale { data_scale: 1024 });
        let outcomes: Vec<UnifiedOutcome> = SystemKind::all()
            .iter()
            .map(|s| run_on(*s, "bfs", &apps))
            .collect();
        let c = Campaign {
            outcomes,
            workloads: vec!["bfs".to_string()],
        };
        let r = report_homogeneous(&c);
        assert!(r.contains("bfs"));
        // The SIMD column's parenthesised total is exactly 1.00.
        assert!(r.contains("(1.00)"));
        let saving = mean_energy_saving(&c, SystemKind::FlashAbacus(SchedulerPolicy::IntraO3));
        assert!(saving > 0.0, "expected an energy saving, got {saving}");
    }
}
