//! Endurance-to-death: churn each placement policy under an injected
//! wear-out fault plan until the device dies.
//!
//! PR 8's fault model makes media mortality simulable: probabilistic
//! program/erase failures condemn blocks (`retire_after` repeated
//! failures), condemned blocks drag their whole block row into the
//! bad-block remap table, and every retired row permanently shrinks the
//! allocator. This experiment drives a deterministic overwrite churn —
//! the identical operation sequence and the identical seeded fault plan
//! per placement policy — until writes fail even after garbage
//! collection and retirement processing, and reports how many host bytes
//! landed before that death. Differences between rows are pure placement
//! effects: a policy that spreads erases postpones the moment the fault
//! plan's per-attempt failures cluster enough condemnations to strangle
//! the free pool.

use fa_flash::FaultPlan;
use fa_platform::mem::Scratchpad;
use fa_platform::PlatformSpec;
use fa_sim::time::{SimDuration, SimTime};
use flashabacus::config::FlashAbacusConfig;
use flashabacus::freespace::PlacementPolicy;
use flashabacus::scheduler::SchedulerPolicy;
use flashabacus::storengine::Storengine;
use flashabacus::Flashvisor;
use std::sync::Arc;

/// The mortality device: 2 channels × 8 blocks × 16 pages of 4 KB, 8 KB
/// groups → 128 groups in 8 block rows (one reserved for the journal).
/// Small enough that wear-out death arrives within milliseconds of wall
/// clock, large enough that GC, retirement, and placement all matter.
fn endurance_config(placement: PlacementPolicy) -> FlashAbacusConfig {
    let mut config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
    config.flash_geometry.blocks_per_plane = 8;
    config.flash_geometry.pages_per_block = 16;
    config.page_group_bytes = 8 * 1024;
    config.gc_low_watermark = 0.50;
    // Journaling is not under test; quiesce it so every erase is either
    // churn GC or a fault consequence.
    config.journal_interval = SimDuration::from_ms(60_000);
    config.placement = placement;
    config
}

/// The identical seeded wear-out plan every policy runs under: roughly
/// one program failure per 250 attempts, half that rate for erases, and
/// three failures condemn a block.
const WEAROUT_PLAN: &str = "seed=29,program=0.004,erase=0.002,retire_after=3";

/// Hard cap on churn rounds so a regression that makes the device
/// immortal cannot hang the bench; reaching it is reported as `died =
/// false`, never silently.
const MAX_ROUNDS: u64 = 200_000;

/// One policy's life story under the wear-out plan.
#[derive(Debug, Clone)]
pub struct EnduranceOutcome {
    /// Placement policy label.
    pub placement: &'static str,
    /// Whether the device actually died before [`MAX_ROUNDS`].
    pub died: bool,
    /// Host bytes written before death.
    pub host_bytes_written: u64,
    /// Churn rounds (one group write each) that landed.
    pub rounds_completed: u64,
    /// Block rows in the bad-block remap table at death.
    pub rows_retired: usize,
    /// Individual blocks the fault plan condemned.
    pub blocks_condemned: u64,
    /// Injected program failures absorbed over the lifetime.
    pub program_failures: u64,
    /// Injected erase failures absorbed over the lifetime.
    pub erase_failures: u64,
}

/// Churns one placement policy to death: overwrite a 24-group logical
/// window one group at a time, collect garbage whenever the watermark
/// trips (absorbing injected GC failures exactly like the system driver:
/// retirement processing runs and the churn continues), and declare
/// death when a write still fails after a burst of last-ditch GC.
pub fn endurance_to_death(placement: PlacementPolicy) -> EnduranceOutcome {
    let config = endurance_config(placement);
    let mut v = Flashvisor::new(config);
    v.install_fault_plan(Arc::new(
        FaultPlan::parse(WEAROUT_PLAN).expect("wear-out plan parses"),
    ));
    let mut s = Storengine::new(config);
    let mut sp = Scratchpad::new(&PlatformSpec::paper_prototype());
    let group_bytes = config.page_group_bytes;
    let window = 24u64;
    let mut now_us = 1u64;
    let mut written = 0u64;
    let mut rounds = 0u64;
    let mut died = false;

    'life: for round in 0..MAX_ROUNDS {
        let lg = round % window;
        // Keep GC ahead of the watermark, boundedly: a dying device can
        // have passes that reclaim nothing.
        for _ in 0..8 {
            if !s.gc_needed(&v) {
                break;
            }
            now_us += 97;
            let t = SimTime::from_us(now_us);
            if s.collect_garbage(t, &mut v).is_err() {
                let _ = v.process_retirements(t);
            }
        }
        now_us += 41;
        let t = SimTime::from_us(now_us);
        let _ = v.process_retirements(t);
        if v.write_section(t, lg * group_bytes, group_bytes, &mut sp)
            .is_ok()
        {
            written += group_bytes;
            rounds += 1;
            continue;
        }
        // The write failed: one last-ditch reclamation burst, then a
        // single retry decides between a transient shortage and death.
        for _ in 0..16 {
            now_us += 97;
            let t = SimTime::from_us(now_us);
            if s.collect_garbage(t, &mut v).is_err() {
                let _ = v.process_retirements(t);
            }
        }
        now_us += 41;
        let t = SimTime::from_us(now_us);
        let _ = v.process_retirements(t);
        if v.write_section(t, lg * group_bytes, group_bytes, &mut sp)
            .is_ok()
        {
            written += group_bytes;
            rounds += 1;
            continue;
        }
        died = true;
        break 'life;
    }

    let stats = v.backbone().fault_stats();
    EnduranceOutcome {
        placement: placement.label(),
        died,
        host_bytes_written: written,
        rounds_completed: rounds,
        rows_retired: v.retired_rows().len(),
        blocks_condemned: stats.blocks_retired,
        program_failures: stats.injected_program_failures,
        erase_failures: stats.injected_erase_failures,
    }
}

/// Runs the wear-out churn for every placement policy.
pub fn endurance_grid() -> Vec<EnduranceOutcome> {
    PlacementPolicy::all()
        .iter()
        .map(|&p| endurance_to_death(p))
        .collect()
}
