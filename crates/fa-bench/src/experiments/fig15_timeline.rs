//! Figure 15: functional-unit utilization and power over time.
//!
//! The paper plots these time series for a heterogeneous workload, comparing
//! `SIMD` with `IntraO3`.

use crate::report::render_series;
use crate::runner::{heterogeneous_workload, run_on, ExperimentScale, SystemKind};
use flashabacus::SchedulerPolicy;

/// Number of points printed per series.
const POINTS: usize = 40;

/// Renders Figure 15a (busy functional units over time) and Figure 15b
/// (power over time) for the MX1 heterogeneous workload.
pub fn report(scale: ExperimentScale) -> String {
    let apps = heterogeneous_workload(1, scale);
    let simd = run_on(SystemKind::Simd, "MX1", &apps);
    let o3 = run_on(
        SystemKind::FlashAbacus(SchedulerPolicy::IntraO3),
        "MX1",
        &apps,
    );

    let to_secs = |series: &fa_sim::stats::TimeSeries| -> Vec<(f64, f64)> {
        series
            .points()
            .iter()
            .map(|(t, v)| (t.as_secs_f64(), *v))
            .collect()
    };

    let mut out = String::from("Figure 15: resource utilization and power over time (MX1)\n\n");
    out.push_str(&render_series(
        "Figure 15a / SIMD: busy functional units",
        &to_secs(&simd.fu_timeline),
        POINTS,
    ));
    out.push_str(&render_series(
        "Figure 15a / IntraO3: busy functional units",
        &to_secs(&o3.fu_timeline),
        POINTS,
    ));
    out.push_str(&render_series(
        "Figure 15b / SIMD: power (W)",
        &to_secs(&simd.power_timeline),
        POINTS,
    ));
    out.push_str(&render_series(
        "Figure 15b / IntraO3: power (W)",
        &to_secs(&o3.power_timeline),
        POINTS,
    ));
    out.push_str(&format!(
        "\nSummary: SIMD finishes at {:.4}s, IntraO3 at {:.4}s; peak SIMD power {:.1} W vs IntraO3 {:.1} W\n",
        simd.total_seconds,
        o3.total_seconds,
        peak(&simd.power_timeline),
        peak(&o3.power_timeline),
    ));
    out
}

fn peak(series: &fa_sim::stats::TimeSeries) -> f64 {
    series.points().iter().map(|p| p.1).fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_report_contains_all_four_series() {
        let r = report(ExperimentScale { data_scale: 1024 });
        assert!(r.contains("Figure 15a / SIMD"));
        assert!(r.contains("Figure 15a / IntraO3"));
        assert!(r.contains("Figure 15b / SIMD"));
        assert!(r.contains("Figure 15b / IntraO3"));
        assert!(r.contains("Summary"));
    }
}
