//! Table 1 (hardware specification) and Table 2 (workload characteristics).

use crate::report::{f1, Table};
use fa_flash::{FlashGeometry, FlashTiming};
use fa_platform::PlatformSpec;
use fa_workloads::mixes::{mix_app_names, MIX_COUNT};
use fa_workloads::polybench::polybench_table2;

/// Renders Table 1: the hardware specification of the prototype.
pub fn table1() -> String {
    let p = PlatformSpec::paper_prototype();
    let g = FlashGeometry::paper_prototype();
    let t = FlashTiming::paper_prototype();
    let mut table = Table::new(
        "Table 1: hardware specification of the baseline platform",
        &[
            "Component",
            "Specification",
            "Frequency / rate",
            "Typical power",
            "Est. bandwidth",
        ],
    );
    table.row(vec![
        "LWP".into(),
        format!("{} processors", p.lwp_count),
        format!("{} GHz", p.lwp_freq_hz as f64 / 1e9),
        format!("{} W/core", p.lwp_power_w),
        "16 GB/s".into(),
    ]);
    table.row(vec![
        "L1/L2 cache".into(),
        format!("{} KB / {} KB", p.l1_bytes / 1024, p.l2_bytes / 1024),
        "500 MHz".into(),
        "-".into(),
        "16 GB/s".into(),
    ]);
    table.row(vec![
        "Scratchpad".into(),
        format!(
            "{} MB, {} banks",
            p.scratchpad_bytes >> 20,
            p.scratchpad_banks
        ),
        "500 MHz".into(),
        "-".into(),
        format!("{} GB/s", p.scratchpad_bytes_per_sec / 1e9),
    ]);
    table.row(vec![
        "Memory".into(),
        format!("DDR3L, {} GB", p.ddr3l_bytes >> 30),
        "800 MHz".into(),
        format!("{} W", p.ddr3l_power_w),
        format!("{} GB/s", p.ddr3l_bytes_per_sec / 1e9),
    ]);
    table.row(vec![
        "Flash backbone".into(),
        format!(
            "{} dies, {} GB, {} channels",
            g.total_dies(),
            g.total_bytes() >> 30,
            g.channels
        ),
        format!(
            "read {} us / program {} us",
            t.read_page.as_us_f64(),
            t.program_page.as_us_f64()
        ),
        format!("{} W", p.flash_power_w),
        "3.2 GB/s".into(),
    ]);
    table.row(vec![
        "PCIe".into(),
        "v2.0, 2 lanes".into(),
        "5 GHz".into(),
        format!("{} W", p.pcie_power_w),
        format!("{} GB/s", p.pcie_bytes_per_sec / 1e9),
    ]);
    table.row(vec![
        "Tier-1 crossbar".into(),
        "256 lanes".into(),
        "500 MHz".into(),
        "-".into(),
        format!("{} GB/s", p.tier1_bytes_per_sec / 1e9),
    ]);
    table.row(vec![
        "Tier-2 crossbar".into(),
        "128 lanes".into(),
        "333 MHz".into(),
        "-".into(),
        format!("{} GB/s", p.tier2_bytes_per_sec / 1e9),
    ]);
    table.render()
}

/// Renders Table 2: workload characteristics plus the regenerated mix
/// compositions.
pub fn table2() -> String {
    let mut table = Table::new(
        "Table 2: workload characteristics",
        &[
            "Name",
            "MBLKs",
            "Serial MBLKs",
            "Input (MB)",
            "LD/ST ratio",
            "B/KI",
            "Class",
        ],
    );
    for row in polybench_table2() {
        table.row(vec![
            row.name.to_string(),
            row.microblocks.to_string(),
            row.serial_microblocks.to_string(),
            row.input_mb.to_string(),
            f1(row.ldst_ratio * 100.0),
            format!("{:.2}", row.bytes_per_kilo_instruction),
            if row.is_data_intensive() {
                "data-intensive".into()
            } else {
                "compute-intensive".into()
            },
        ]);
    }
    let mut out = table.render();
    out.push('\n');
    let mut mixes = Table::new(
        "Table 2 (right half): heterogeneous mix compositions (regenerated; see DESIGN.md)",
        &["Mix", "Applications"],
    );
    for mix in 1..=MIX_COUNT {
        mixes.row(vec![format!("MX{mix}"), mix_app_names(mix).join(", ")]);
    }
    out.push_str(&mixes.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_every_component() {
        let t = table1();
        for needle in [
            "LWP",
            "Scratchpad",
            "DDR3L",
            "Flash backbone",
            "PCIe",
            "Tier-1",
        ] {
            assert!(t.contains(needle), "missing {needle}");
        }
        assert!(t.contains("8 processors"));
        assert!(t.contains("32 GB"));
    }

    #[test]
    fn table2_lists_all_benchmarks_and_mixes() {
        let t = table2();
        for name in ["ATAX", "BICG", "FDTD", "CORR", "MX1", "MX14"] {
            assert!(t.contains(name), "missing {name}");
        }
    }
}
