//! Open-loop scale-out capacity curve and online-QoS-governor ablation.
//!
//! This experiment drives the open-loop multi-tenant traffic engine
//! (`flashabacus::openloop`) with seeded Poisson arrivals over the three
//! tenant templates and sweeps the offered load around the accelerator's
//! measured capacity:
//!
//! 1. A **saturation probe** floods the admission queue (every tenant
//!    arrives at once) and measures the drain throughput — the pipeline's
//!    real capacity, which the flash program tail dominates rather than
//!    the compute time an isolated tenant would suggest. That measured
//!    capacity anchors the sweep's base rate.
//! 2. The **capacity curve** sweeps offered load from well under to well
//!    over that base rate, recording completed-tenant throughput, tail-SLO
//!    attainment, sojourn quantiles, admission/shed counts, and Jain's
//!    fairness — the tenants/sec-vs-attainment trade the paper's scale-out
//!    story turns on. The lightest point's p99 sojourn defines the tail
//!    SLO (`SLO_FACTOR ×` light-load p99) every point is judged against.
//! 3. The **governor ablation** repeats the overload point with the online
//!    QoS governor disabled (static `QosConfig` budgets), isolating what
//!    the per-tenant budget retuning buys at the tail.
//!
//! Everything here is simulated time and exactly reproducible: the same
//! seed produces byte-identical reports (see `tests/scaleout_determinism`).

use crate::runner::ExperimentScale;
use fa_kernel::model::Application;
use fa_sim::arrivals::{ArrivalPlan, ArrivalShape};
use fa_sim::time::SimDuration;
use fa_workloads::tenants::tenant_templates;
use flashabacus::config::{FlashAbacusConfig, GovernorConfig, ScaleoutConfig};
use flashabacus::openloop::OpenLoopReport;
use flashabacus::scheduler::SchedulerPolicy;
use flashabacus::system::FlashAbacusSystem;
use std::fmt::Write as _;

/// Seed every scale-out campaign derives from.
pub const SCALEOUT_SEED: u64 = 0xFA10;

/// The tail SLO is this multiple of the light-load p99 sojourn.
pub const SLO_FACTOR: f64 = 3.0;

/// Offered-load multipliers of the capacity sweep, relative to the
/// calibrated base rate.
pub const RATE_MULTIPLIERS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

/// One campaign's aggregate outcome at a given offered load.
#[derive(Debug, Clone)]
pub struct ScaleoutStat {
    /// Offered load as a multiple of the calibrated base rate.
    pub rate_multiplier: f64,
    /// Offered load in tenants per simulated second.
    pub rate_per_s: f64,
    /// Tenants the arrival plan injected.
    pub arrived: u64,
    /// Tenants admitted straight into a free slot.
    pub admitted: u64,
    /// Tenants that waited in the admission queue first.
    pub queued: u64,
    /// Tenants shed at a full queue.
    pub shed: u64,
    /// Tenants that ran to completion.
    pub completed: u64,
    /// Completed-tenant throughput in tenants per simulated second.
    pub completed_tenants_per_s: f64,
    /// Fraction of arrived tenants whose sojourn met the tail SLO.
    pub slo_attainment: f64,
    /// Sojourn quantiles over completed tenants, in seconds.
    pub sojourn_p50_s: f64,
    /// 99th-percentile sojourn in seconds.
    pub sojourn_p99_s: f64,
    /// 99.9th-percentile sojourn in seconds.
    pub sojourn_p999_s: f64,
    /// Jain's fairness index over per-tenant flash service.
    pub fairness: f64,
    /// Online budget recomputations the governor performed.
    pub governor_updates: u64,
    /// p99 sojourn per template index (seconds); the ablation reads this
    /// to show what budget retuning does to each tenant shape.
    pub per_template_p99_s: Vec<(usize, f64)>,
}

/// The overload point run with and without the online QoS governor.
#[derive(Debug, Clone)]
pub struct GovernorAblation {
    /// Offered load of the ablation point, tenants per simulated second.
    pub rate_per_s: f64,
    /// The governed run (online per-tenant budget retuning).
    pub governed: ScaleoutStat,
    /// The same campaign under the static `QosConfig` budgets.
    pub static_budgets: ScaleoutStat,
}

/// Everything the scale-out experiment produces.
#[derive(Debug, Clone)]
pub struct ScaleoutReport {
    /// Tenants injected per campaign.
    pub tenants: u32,
    /// Measured capacity: the saturation probe's completed-tenant drain
    /// throughput, tenants per simulated second.
    pub base_rate_per_s: f64,
    /// The tail SLO in seconds ([`SLO_FACTOR`] × light-load p99).
    pub slo_limit_s: f64,
    /// One point per [`RATE_MULTIPLIERS`] entry, governor on.
    pub curve: Vec<ScaleoutStat>,
    /// Governor-on vs static-budget comparison at the 4× overload point.
    pub ablation: GovernorAblation,
}

/// Tenants per campaign at the given data scale: 1000 at the default
/// `FA_DATA_SCALE=16`, clamped so CI smokes stay small and full-scale runs
/// stay bounded.
pub fn scaleout_tenants(scale: ExperimentScale) -> u32 {
    (16_000 / scale.data_scale.max(1)).clamp(64, 2000) as u32
}

/// The accelerator configuration every scale-out campaign runs on: the
/// paper prototype with background GC enabled (so the governor shares the
/// channels with reclamation, as in deployment).
pub fn scaleout_config() -> FlashAbacusConfig {
    let mut config = FlashAbacusConfig::paper_prototype(SchedulerPolicy::InterDy);
    config.qos.background_gc = true;
    config
}

/// The concurrency bounds shared by every campaign; `governed` toggles the
/// online QoS governor.
pub fn scaleout_bounds(governed: bool) -> ScaleoutConfig {
    ScaleoutConfig {
        max_in_flight: 6,
        queue_limit: 64,
        governor: governed.then(GovernorConfig::default),
    }
}

/// Runs one open-loop campaign over the tenant templates.
pub fn run_scaleout_campaign(
    templates: &[Application],
    plan: &ArrivalPlan,
    governed: bool,
) -> OpenLoopReport {
    let mut system = FlashAbacusSystem::without_env_faults(scaleout_config());
    system
        .run_open_loop(templates, plan, &scaleout_bounds(governed))
        .unwrap_or_else(|e| panic!("open-loop campaign failed: {e}"))
}

fn plan_at(rate_per_s: f64, tenants: u32, templates: usize) -> ArrivalPlan {
    ArrivalPlan {
        seed: SCALEOUT_SEED,
        rate_per_s,
        tenants,
        shape: ArrivalShape::Poisson,
        templates,
        ..Default::default()
    }
}

fn stat_of(report: &OpenLoopReport, multiplier: f64, rate_per_s: f64, slo_s: f64) -> ScaleoutStat {
    let completed = report
        .tenants
        .iter()
        .filter(|t| t.completed_at.is_some())
        .count() as u64;
    let finished_s = report.outcome.finished_at.as_secs_f64();
    let mut by_template: std::collections::BTreeMap<usize, Vec<f64>> = Default::default();
    for t in &report.tenants {
        if let Some(s) = t.sojourn() {
            by_template
                .entry(t.template)
                .or_default()
                .push(s.as_secs_f64());
        }
    }
    let per_template_p99_s: Vec<(usize, f64)> = by_template
        .into_iter()
        .map(|(tpl, mut sojourns)| {
            sojourns.sort_by(f64::total_cmp);
            let idx = ((sojourns.len() - 1) as f64 * 0.99).round() as usize;
            (tpl, sojourns[idx])
        })
        .collect();
    ScaleoutStat {
        rate_multiplier: multiplier,
        rate_per_s,
        arrived: report.outcome.tenants_arrived,
        admitted: report.outcome.tenants_admitted,
        queued: report.outcome.tenants_queued,
        shed: report.outcome.tenants_shed,
        completed,
        completed_tenants_per_s: completed as f64 / finished_s.max(1e-12),
        slo_attainment: report.slo_attainment(SimDuration::from_ns((slo_s * 1e9) as u64)),
        sojourn_p50_s: report.outcome.tenant_sojourn_p50_s,
        sojourn_p99_s: report.outcome.tenant_sojourn_p99_s,
        sojourn_p999_s: report.outcome.tenant_sojourn_p999_s,
        fairness: report.outcome.tenant_fairness_index,
        governor_updates: report.outcome.governor_updates,
        per_template_p99_s,
    }
}

/// Runs the whole experiment: calibration probe, capacity curve, and the
/// governor ablation at the 4× overload point.
pub fn scaleout_report(scale: ExperimentScale) -> ScaleoutReport {
    let templates = tenant_templates(scale.data_scale);
    let tenants = scaleout_tenants(scale);

    // Saturation probe: every tenant arrives within microseconds, the
    // queue fills instantly, and the completion rate of the drain is the
    // pipeline's measured capacity (the flash program tail, not the
    // isolated compute time, sets the cadence).
    let probe = run_scaleout_campaign(&templates, &plan_at(1e7, tenants, templates.len()), true);
    let probe_completed = probe
        .tenants
        .iter()
        .filter(|t| t.completed_at.is_some())
        .count();
    assert!(probe_completed > 0, "saturation probe completed no tenants");
    let base_rate_per_s =
        probe_completed as f64 / probe.outcome.finished_at.as_secs_f64().max(1e-12);

    // The sweep, governor on throughout. The lightest point defines the
    // tail SLO, so attainment is computed once all campaigns have run.
    let reports: Vec<(f64, f64, OpenLoopReport)> = RATE_MULTIPLIERS
        .iter()
        .map(|&m| {
            let rate = base_rate_per_s * m;
            let report =
                run_scaleout_campaign(&templates, &plan_at(rate, tenants, templates.len()), true);
            (m, rate, report)
        })
        .collect();
    let slo_limit_s = SLO_FACTOR * reports[0].2.sojourn_quantile(0.99);
    let curve: Vec<ScaleoutStat> = reports
        .iter()
        .map(|(m, rate, report)| stat_of(report, *m, *rate, slo_limit_s))
        .collect();

    // The ablation reuses the curve's own deepest overload point as the
    // governed side — identical seed and rate, so the comparison isolates
    // the governor exactly where queue pressure and the template mix give
    // it a noisy neighbour to act on.
    let overload_multiplier = 4.0;
    let overload_rate = base_rate_per_s * overload_multiplier;
    let governed = curve
        .iter()
        .find(|s| s.rate_multiplier == overload_multiplier)
        .expect("capacity curve covers the 4x point")
        .clone();
    let static_report = run_scaleout_campaign(
        &templates,
        &plan_at(overload_rate, tenants, templates.len()),
        false,
    );
    let static_budgets = stat_of(
        &static_report,
        overload_multiplier,
        overload_rate,
        slo_limit_s,
    );

    ScaleoutReport {
        tenants,
        base_rate_per_s,
        slo_limit_s,
        curve,
        ablation: GovernorAblation {
            rate_per_s: overload_rate,
            governed,
            static_budgets,
        },
    }
}

/// Renders the report as the plain-text tables the `scaleout` binary
/// prints.
pub fn render_scaleout(report: &ScaleoutReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Open-loop scale-out: {} tenants/campaign, base rate {:.0}/s, tail SLO {:.3} ms",
        report.tenants,
        report.base_rate_per_s,
        report.slo_limit_s * 1e3
    );
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>8} {:>8} {:>7} {:>6} {:>10} {:>12} {:>10} {:>10} {:>9} {:>9}",
        "load",
        "rate/s",
        "admit",
        "queued",
        "shed",
        "done",
        "done/s",
        "SLO-attain",
        "p50 ms",
        "p99 ms",
        "fairness",
        "gov-upd"
    );
    for s in &report.curve {
        let _ = writeln!(
            out,
            "{:>5.2}x {:>12.0} {:>8} {:>8} {:>7} {:>6} {:>10.0} {:>11.1}% {:>10.4} {:>10.4} {:>9.4} {:>9}",
            s.rate_multiplier,
            s.rate_per_s,
            s.admitted,
            s.queued,
            s.shed,
            s.completed,
            s.completed_tenants_per_s,
            s.slo_attainment * 100.0,
            s.sojourn_p50_s * 1e3,
            s.sojourn_p99_s * 1e3,
            s.fairness,
            s.governor_updates
        );
    }
    let a = &report.ablation;
    let _ = writeln!(
        out,
        "\nGovernor ablation at {:.0} tenants/s (4x overload):",
        a.rate_per_s
    );
    for (label, s) in [
        ("online governor", &a.governed),
        ("static budgets", &a.static_budgets),
    ] {
        let _ = writeln!(
            out,
            "  {label:<16} done {:>5}  SLO-attain {:>5.1}%  p99 {:>9.4} ms  p999 {:>9.4} ms  fairness {:.4}",
            s.completed,
            s.slo_attainment * 100.0,
            s.sojourn_p99_s * 1e3,
            s.sojourn_p999_s * 1e3,
            s.fairness
        );
        let per_tpl: Vec<String> = s
            .per_template_p99_s
            .iter()
            .map(|(tpl, p99)| format!("tpl{} {:.4} ms", tpl, p99 * 1e3))
            .collect();
        let _ = writeln!(out, "  {:<16} per-template p99: {}", "", per_tpl.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaleout_tenants_tracks_the_data_scale() {
        assert_eq!(scaleout_tenants(ExperimentScale { data_scale: 16 }), 1000);
        assert_eq!(scaleout_tenants(ExperimentScale { data_scale: 256 }), 64);
        assert_eq!(scaleout_tenants(ExperimentScale { data_scale: 1 }), 2000);
    }

    #[test]
    fn small_scale_report_is_complete_and_deterministic() {
        let scale = ExperimentScale { data_scale: 1024 };
        let a = scaleout_report(scale);
        assert_eq!(a.curve.len(), RATE_MULTIPLIERS.len());
        assert!(a.base_rate_per_s > 0.0);
        assert!(a.slo_limit_s > 0.0);
        // Light load meets the SLO by construction; every point completes
        // someone and the rendering mentions the attainment column.
        assert!(a.curve[0].slo_attainment > 0.9, "{:?}", a.curve[0]);
        assert!(a.curve.iter().all(|s| s.completed > 0));
        let text = render_scaleout(&a);
        assert!(text.contains("SLO-attain"));
        assert!(text.contains("Governor ablation"));

        let b = scaleout_report(scale);
        for (x, y) in a.curve.iter().zip(&b.curve) {
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.slo_attainment.to_bits(), y.slo_attainment.to_bits());
            assert_eq!(x.sojourn_p99_s.to_bits(), y.sojourn_p99_s.to_bits());
        }
    }
}
