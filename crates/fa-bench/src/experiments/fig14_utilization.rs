//! Figure 14: processor (LWP) utilization.

use crate::experiments::campaign::Campaign;
use crate::report::{pct, Table};
use crate::runner::SystemKind;

/// Renders Figure 14a (homogeneous workloads).
pub fn report_homogeneous(campaign: &Campaign) -> String {
    render(
        campaign,
        "Figure 14a: LWP utilization, homogeneous workloads",
    )
}

/// Renders Figure 14b (heterogeneous workloads).
pub fn report_heterogeneous(campaign: &Campaign) -> String {
    render(
        campaign,
        "Figure 14b: LWP utilization, heterogeneous workloads",
    )
}

fn render(campaign: &Campaign, title: &str) -> String {
    let mut headers = vec!["Workload"];
    let labels: Vec<&str> = SystemKind::all().iter().map(|s| s.label()).collect();
    headers.extend(labels.iter().copied());
    let mut table = Table::new(title, &headers);
    for workload in &campaign.workloads {
        let mut row = vec![workload.clone()];
        for system in SystemKind::all() {
            row.push(pct(campaign.expect(workload, system).mean_lwp_utilization));
        }
        table.row(row);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{bigdata_workload, run_on, ExperimentScale, UnifiedOutcome};
    use fa_workloads::bigdata::BigDataBench;

    #[test]
    fn utilization_report_renders_percentages() {
        let apps = bigdata_workload(BigDataBench::Nn, ExperimentScale { data_scale: 1024 });
        let outcomes: Vec<UnifiedOutcome> = SystemKind::all()
            .iter()
            .map(|s| run_on(*s, "nn", &apps))
            .collect();
        let c = Campaign {
            outcomes,
            workloads: vec!["nn".to_string()],
        };
        let r = report_homogeneous(&c);
        assert!(r.contains('%'));
        assert!(r.contains("nn"));
    }
}
