//! Figure 10: data-processing throughput of the five accelerated systems.

use crate::experiments::campaign::Campaign;
use crate::report::{f1, Table};
use crate::runner::SystemKind;

/// Renders Figure 10a (homogeneous workloads) from a homogeneous campaign.
pub fn report_homogeneous(campaign: &Campaign) -> String {
    render(
        campaign,
        "Figure 10a: throughput (MB/s), homogeneous workloads (6 instances per kernel)",
    )
}

/// Renders Figure 10b (heterogeneous workloads) from a heterogeneous
/// campaign.
pub fn report_heterogeneous(campaign: &Campaign) -> String {
    render(
        campaign,
        "Figure 10b: throughput (MB/s), heterogeneous workloads (24 instances per mix)",
    )
}

fn render(campaign: &Campaign, title: &str) -> String {
    let mut headers = vec!["Workload"];
    let labels: Vec<&str> = SystemKind::all().iter().map(|s| s.label()).collect();
    headers.extend(labels.iter().copied());
    headers.push("IntraO3/SIMD");
    let mut table = Table::new(title, &headers);
    for workload in &campaign.workloads {
        let mut row = vec![workload.clone()];
        let mut simd = 0.0;
        let mut o3 = 0.0;
        for system in SystemKind::all() {
            let out = campaign.expect(workload, system);
            row.push(f1(out.throughput_mb_s));
            match system {
                SystemKind::Simd => simd = out.throughput_mb_s,
                SystemKind::FlashAbacus(flashabacus::SchedulerPolicy::IntraO3) => {
                    o3 = out.throughput_mb_s
                }
                _ => {}
            }
        }
        row.push(if simd > 0.0 {
            format!("{:.2}x", o3 / simd)
        } else {
            "n/a".into()
        });
        table.row(row);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{bigdata_workload, run_on, ExperimentScale, UnifiedOutcome};
    use fa_workloads::bigdata::BigDataBench;

    /// Builds a one-workload campaign quickly for rendering tests.
    fn tiny_campaign() -> Campaign {
        let apps = bigdata_workload(BigDataBench::Path, ExperimentScale { data_scale: 1024 });
        let outcomes: Vec<UnifiedOutcome> = SystemKind::all()
            .iter()
            .map(|s| run_on(*s, "path", &apps))
            .collect();
        Campaign {
            outcomes,
            workloads: vec!["path".to_string()],
        }
    }

    #[test]
    fn throughput_table_has_all_five_systems() {
        let c = tiny_campaign();
        let r = report_homogeneous(&c);
        for label in ["SIMD", "InterSt", "IntraIo", "InterDy", "IntraO3"] {
            assert!(r.contains(label), "missing {label}");
        }
        assert!(r.contains("path"));
        assert!(r.contains('x'));
    }
}
