//! Figure 3: the motivation study on the conventional system.
//!
//! * Figures 3b/3c sweep the fraction of serialized execution (0–50 %) and
//!   the number of active LWPs (1–8) and report throughput and core
//!   utilization of the conventional accelerator.
//! * Figures 3d/3e run the PolyBench applications on the conventional
//!   system and decompose execution time (accelerator / SSD / host storage
//!   stack) and energy (data movement / computation / storage access).

use crate::report::{f1, pct, Table};
use crate::runner::ExperimentScale;
use fa_baseline::{BaselineConfig, ConventionalSystem};
use fa_kernel::instance::{instantiate_many, InstancePlan};
use fa_workloads::polybench::{polybench_app, polybench_table2};
use fa_workloads::synthetic::{synthetic_app, SyntheticSpec};

/// Applications shown in Figures 3d/3e, in the paper's order.
pub const FIG3_APPS: [&str; 11] = [
    "ATAX", "BICG", "2DCONV", "MVT", "SYRK", "3MM", "GESUM", "ADI", "COVAR", "FDTD", "GEMM",
];

/// Renders the Figure 3b/3c sensitivity study.
pub fn report_sensitivity(scale: ExperimentScale) -> String {
    let serial_fractions = SyntheticSpec::figure3_serial_fractions();
    let mut throughput = Table::new(
        "Figure 3b: conventional-accelerator throughput (MB/s) vs. cores and serial fraction",
        &["Cores", "0%", "10%", "20%", "30%", "40%", "50%"],
    );
    let mut utilization = Table::new(
        "Figure 3c: conventional-accelerator core utilization vs. cores and serial fraction",
        &["Cores", "0%", "10%", "20%", "30%", "40%", "50%"],
    );
    for cores in 1..=8usize {
        let mut tput_row = vec![cores.to_string()];
        let mut util_row = vec![cores.to_string()];
        for &serial in &serial_fractions {
            // A kernel whose execution is compute-bound once its data is on
            // the accelerator, so the sweep isolates the effect of serial
            // code and core count exactly as the paper's §3.1 study does.
            let spec = SyntheticSpec {
                instructions: 6_000_000_000 / scale.data_scale.max(1),
                serial_fraction: serial,
                input_bytes: (256 << 20) / scale.data_scale.max(1),
                output_bytes: (32 << 20) / scale.data_scale.max(1),
                ldst_ratio: 0.40,
                mul_ratio: 0.10,
                parallel_screens: 8,
            };
            let apps = instantiate_many(
                &[synthetic_app("SWEEP", &spec)],
                &InstancePlan {
                    instances_per_app: 2,
                    ..Default::default()
                },
            );
            let mut system =
                ConventionalSystem::new(BaselineConfig::paper_baseline().with_active_lwps(cores));
            let out = system.run(&apps);
            tput_row.push(f1(out.throughput_mb_s()));
            util_row.push(pct(out.mean_lwp_utilization()));
        }
        throughput.row(tput_row);
        utilization.row(util_row);
    }
    format!("{}\n{}", throughput.render(), utilization.render())
}

/// Renders the Figure 3d/3e breakdowns.
pub fn report_breakdown(scale: ExperimentScale) -> String {
    let rows = polybench_table2();
    let mut time_table = Table::new(
        "Figure 3d: execution-time breakdown on the conventional system",
        &["App", "Accelerator", "SSD", "Host storage stack"],
    );
    let mut energy_table = Table::new(
        "Figure 3e: energy breakdown on the conventional system",
        &["App", "Data movement", "Computation", "Storage access"],
    );
    for name in FIG3_APPS {
        let row = rows
            .iter()
            .find(|r| r.name == name)
            .expect("Figure 3 app exists in Table 2");
        let apps = vec![polybench_app(row.bench, scale.data_scale)];
        let mut system = ConventionalSystem::new(BaselineConfig::paper_baseline());
        let out = system.run(&apps);
        let (accel, ssd, stack) = out.time_breakdown.fractions();
        time_table.row(vec![name.to_string(), pct(accel), pct(ssd), pct(stack)]);
        let total = out.energy.total_j().max(f64::EPSILON);
        energy_table.row(vec![
            name.to_string(),
            pct(out.energy.data_movement_j / total),
            pct(out.energy.computation_j / total),
            pct(out.energy.storage_access_j / total),
        ]);
    }
    format!("{}\n{}", time_table.render(), energy_table.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_report_has_all_core_counts() {
        let r = report_sensitivity(ExperimentScale { data_scale: 512 });
        assert!(r.contains("Figure 3b"));
        assert!(r.contains("Figure 3c"));
        // Eight rows per table plus headers.
        assert!(r.lines().filter(|l| l.starts_with('8')).count() >= 2);
    }

    #[test]
    fn breakdown_report_covers_the_eleven_apps() {
        let r = report_breakdown(ExperimentScale { data_scale: 512 });
        for app in FIG3_APPS {
            assert!(r.contains(app), "missing {app}");
        }
        assert!(r.contains("Figure 3d"));
        assert!(r.contains("Figure 3e"));
    }
}
