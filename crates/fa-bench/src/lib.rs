//! Experiment harness for the FlashAbacus reproduction.
//!
//! Every table and figure of the paper's evaluation has a regeneration
//! entry point here. The harness runs the five accelerated systems (`SIMD`,
//! `InterSt`, `InterDy`, `IntraIo`, `IntraO3`) over the paper's workloads,
//! collects a unified set of metrics per run, and renders the same rows and
//! series the paper reports.
//!
//! * [`runner`] — the unified "run workload X on system Y" entry point and
//!   workload builders.
//! * [`report`] — plain-text table/series rendering shared by all binaries.
//! * [`experiments`] — one module per table/figure, each returning its
//!   formatted report (the `src/bin/*` binaries are thin wrappers).
//!
//! Absolute numbers will not match the paper — the hardware is replaced by
//! the simulator described in `DESIGN.md` — but the comparisons the paper
//! draws (who wins, by roughly what factor, where the crossovers are) are
//! expected to hold and are what `EXPERIMENTS.md` records.

pub mod experiments;
pub mod perf;
pub mod report;
pub mod runner;

pub use runner::{
    bigdata_workload, campaign_threads, heterogeneous_workload, homogeneous_workload, run_on,
    run_pairs, run_pairs_with_threads, ExperimentScale, SystemKind, UnifiedOutcome,
};
