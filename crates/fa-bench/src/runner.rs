//! Unified experiment runner.
//!
//! The paper evaluates five accelerated systems (§5 "Accelerators"): the
//! conventional `SIMD` baseline and the four FlashAbacus schedulers. This
//! module gives each of them a single entry point that accepts a batch of
//! application instances and returns the same [`UnifiedOutcome`] record, so
//! the per-figure modules can treat all five uniformly.

use fa_baseline::{BaselineConfig, ConventionalSystem};
use fa_energy::EnergyBreakdown;
use fa_kernel::instance::{instantiate_many, InstancePlan};
use fa_kernel::model::Application;
use fa_sim::stats::TimeSeries;
use fa_workloads::bigdata::{bigdata_app, BigDataBench};
use fa_workloads::mixes::mix_apps;
use fa_workloads::polybench::{polybench_app, PolyBench};
use flashabacus::{FlashAbacusConfig, FlashAbacusSystem, SchedulerPolicy};
use serde::{Deserialize, Serialize};

/// The five accelerated systems of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// Conventional accelerator + discrete NVMe SSD, OpenMP SIMD execution.
    Simd,
    /// FlashAbacus with one of the four scheduling policies.
    FlashAbacus(SchedulerPolicy),
}

impl SystemKind {
    /// All five systems in the order the paper's figures list them.
    pub fn all() -> [SystemKind; 5] {
        [
            SystemKind::Simd,
            SystemKind::FlashAbacus(SchedulerPolicy::InterSt),
            SystemKind::FlashAbacus(SchedulerPolicy::IntraIo),
            SystemKind::FlashAbacus(SchedulerPolicy::InterDy),
            SystemKind::FlashAbacus(SchedulerPolicy::IntraO3),
        ]
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Simd => "SIMD",
            SystemKind::FlashAbacus(p) => p.label(),
        }
    }
}

/// How much the paper's data sets are scaled down for simulation speed.
///
/// Scaling divides every input size (and therefore instruction count) by
/// `data_scale`; all ratios the figures depend on are preserved. The
/// environment variable `FA_DATA_SCALE` overrides the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Divisor applied to Table 2's input sizes.
    pub data_scale: u64,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale { data_scale: 16 }
    }
}

impl ExperimentScale {
    /// The default scale, unless `FA_DATA_SCALE` overrides it.
    pub fn from_env() -> Self {
        let data_scale = std::env::var("FA_DATA_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|v| *v > 0)
            .unwrap_or(16);
        ExperimentScale { data_scale }
    }

    /// A coarser scale for unit tests and Criterion benches.
    pub fn quick() -> Self {
        ExperimentScale { data_scale: 128 }
    }
}

/// Metrics shared by every system, extracted from either a FlashAbacus
/// [`flashabacus::RunOutcome`] or a baseline
/// [`fa_baseline::BaselineOutcome`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnifiedOutcome {
    /// Which system produced the outcome.
    pub system: SystemKind,
    /// Workload label (benchmark or mix name).
    pub workload: String,
    /// Total execution time in seconds.
    pub total_seconds: f64,
    /// Aggregate data-processing throughput in MB/s.
    pub throughput_mb_s: f64,
    /// Kernel latency statistics `(min, avg, max)` in seconds.
    pub latency_min_avg_max: (f64, f64, f64),
    /// Kernel completion instants in seconds, ascending (CDF x-values).
    pub completion_times: Vec<f64>,
    /// Energy breakdown in joules.
    pub energy: EnergyBreakdown,
    /// Mean LWP utilization in `[0, 1]` (worker LWPs for FlashAbacus, the
    /// active LWPs for SIMD).
    pub mean_lwp_utilization: f64,
    /// Busy-functional-unit timeline.
    pub fu_timeline: TimeSeries,
    /// Power timeline in watts.
    pub power_timeline: TimeSeries,
}

impl UnifiedOutcome {
    /// Total energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.energy.total_j()
    }
}

/// Builds the homogeneous workload of §5.1: six instances of one PolyBench
/// application.
pub fn homogeneous_workload(bench: PolyBench, scale: ExperimentScale) -> Vec<Application> {
    instantiate_many(
        &[polybench_app(bench, scale.data_scale)],
        &InstancePlan::homogeneous(),
    )
}

/// Builds the heterogeneous workload MX`mix` of §5.1: 24 instances, four of
/// each of the mix's six applications.
pub fn heterogeneous_workload(mix: usize, scale: ExperimentScale) -> Vec<Application> {
    mix_apps(mix, scale.data_scale)
}

/// Builds the graph/big-data workload of §5.6: six instances of one
/// benchmark.
pub fn bigdata_workload(bench: BigDataBench, scale: ExperimentScale) -> Vec<Application> {
    instantiate_many(
        &[bigdata_app(bench, scale.data_scale)],
        &InstancePlan::homogeneous(),
    )
}

/// Runs `apps` on `system` and returns the unified outcome.
///
/// # Panics
///
/// Panics if the FlashAbacus run fails (out of flash space or a scheduler
/// stall), which indicates a harness configuration error rather than a
/// measurable result.
pub fn run_on(system: SystemKind, workload_label: &str, apps: &[Application]) -> UnifiedOutcome {
    match system {
        SystemKind::Simd => {
            let mut sys = ConventionalSystem::new(BaselineConfig::paper_baseline());
            let out = sys.run(apps);
            UnifiedOutcome {
                system,
                workload: workload_label.to_string(),
                total_seconds: out.finished_at.as_secs_f64(),
                throughput_mb_s: out.throughput_mb_s(),
                latency_min_avg_max: out.latency_stats(),
                completion_times: out.completion_cdf().into_iter().map(|(t, _)| t).collect(),
                energy: out.energy,
                mean_lwp_utilization: out.mean_lwp_utilization(),
                fu_timeline: out.fu_timeline,
                power_timeline: out.power_timeline,
            }
        }
        SystemKind::FlashAbacus(policy) => {
            let mut sys = FlashAbacusSystem::new(FlashAbacusConfig::paper_prototype(policy));
            let out = sys
                .run(apps)
                .unwrap_or_else(|e| panic!("FlashAbacus run failed on {workload_label}: {e}"));
            UnifiedOutcome {
                system,
                workload: workload_label.to_string(),
                total_seconds: out.finished_at.as_secs_f64(),
                throughput_mb_s: out.throughput_mb_s(),
                latency_min_avg_max: out.latency_stats(),
                completion_times: out.completion_cdf().into_iter().map(|(t, _)| t).collect(),
                energy: out.energy.breakdown,
                mean_lwp_utilization: out.mean_worker_utilization(),
                fu_timeline: out.fu_timeline,
                power_timeline: out.power_timeline,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_labels_match_the_paper() {
        let labels: Vec<&str> = SystemKind::all().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["SIMD", "InterSt", "IntraIo", "InterDy", "IntraO3"]
        );
    }

    #[test]
    fn homogeneous_workload_has_six_instances() {
        let apps = homogeneous_workload(PolyBench::Gemm, ExperimentScale::quick());
        assert_eq!(apps.len(), 6);
        assert!(apps.iter().all(|a| a.name == "GEMM"));
    }

    #[test]
    fn heterogeneous_workload_has_24_instances() {
        let apps = heterogeneous_workload(1, ExperimentScale::quick());
        assert_eq!(apps.len(), 24);
    }

    #[test]
    fn all_systems_run_a_small_workload() {
        let scale = ExperimentScale { data_scale: 512 };
        let apps = homogeneous_workload(PolyBench::Gemm, scale);
        for system in SystemKind::all() {
            let out = run_on(system, "GEMM", &apps);
            assert!(out.total_seconds > 0.0, "{}", system.label());
            assert!(out.throughput_mb_s > 0.0, "{}", system.label());
            assert!(out.total_energy_j() > 0.0, "{}", system.label());
            assert_eq!(out.completion_times.len(), 6, "{}", system.label());
        }
    }

    #[test]
    fn flashabacus_beats_simd_on_a_data_intensive_workload() {
        // The headline claim, checked on a scaled-down ATAX batch.
        let scale = ExperimentScale { data_scale: 256 };
        let apps = homogeneous_workload(PolyBench::Atax, scale);
        let simd = run_on(SystemKind::Simd, "ATAX", &apps);
        let fa = run_on(
            SystemKind::FlashAbacus(SchedulerPolicy::IntraO3),
            "ATAX",
            &apps,
        );
        assert!(
            fa.throughput_mb_s > simd.throughput_mb_s,
            "FlashAbacus {:.1} MB/s should beat SIMD {:.1} MB/s",
            fa.throughput_mb_s,
            simd.throughput_mb_s
        );
        assert!(
            fa.total_energy_j() < simd.total_energy_j(),
            "FlashAbacus {:.3} J should use less energy than SIMD {:.3} J",
            fa.total_energy_j(),
            simd.total_energy_j()
        );
    }

    #[test]
    fn scale_from_env_defaults_to_16() {
        // The env var is not set during tests.
        if std::env::var("FA_DATA_SCALE").is_err() {
            assert_eq!(ExperimentScale::from_env().data_scale, 16);
        }
    }
}
