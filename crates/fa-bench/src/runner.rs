//! Unified experiment runner.
//!
//! The paper evaluates five accelerated systems (§5 "Accelerators"): the
//! conventional `SIMD` baseline and the four FlashAbacus schedulers. This
//! module gives each of them a single entry point that accepts a batch of
//! application instances and returns the same [`UnifiedOutcome`] record, so
//! the per-figure modules can treat all five uniformly.

use fa_baseline::{BaselineConfig, ConventionalSystem};
use fa_energy::EnergyBreakdown;
use fa_kernel::instance::{instantiate_many, InstancePlan};
use fa_kernel::model::Application;
use fa_sim::stats::TimeSeries;
use fa_workloads::bigdata::{bigdata_app, BigDataBench};
use fa_workloads::mixes::mix_apps;
use fa_workloads::polybench::{polybench_app, PolyBench};
use flashabacus::{FlashAbacusConfig, FlashAbacusSystem, SchedulerPolicy};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The five accelerated systems of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// Conventional accelerator + discrete NVMe SSD, OpenMP SIMD execution.
    Simd,
    /// FlashAbacus with one of the four scheduling policies.
    FlashAbacus(SchedulerPolicy),
}

impl SystemKind {
    /// All five systems in the order the paper's figures list them.
    pub fn all() -> [SystemKind; 5] {
        [
            SystemKind::Simd,
            SystemKind::FlashAbacus(SchedulerPolicy::InterSt),
            SystemKind::FlashAbacus(SchedulerPolicy::IntraIo),
            SystemKind::FlashAbacus(SchedulerPolicy::InterDy),
            SystemKind::FlashAbacus(SchedulerPolicy::IntraO3),
        ]
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Simd => "SIMD",
            SystemKind::FlashAbacus(p) => p.label(),
        }
    }
}

/// How much the paper's data sets are scaled down for simulation speed.
///
/// Scaling divides every input size (and therefore instruction count) by
/// `data_scale`; all ratios the figures depend on are preserved. The
/// environment variable `FA_DATA_SCALE` overrides the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Divisor applied to Table 2's input sizes.
    pub data_scale: u64,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale { data_scale: 16 }
    }
}

impl ExperimentScale {
    /// The default scale, unless `FA_DATA_SCALE` overrides it.
    pub fn from_env() -> Self {
        let data_scale = std::env::var("FA_DATA_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|v| *v > 0)
            .unwrap_or(16);
        ExperimentScale { data_scale }
    }

    /// A coarser scale for unit tests and Criterion benches.
    pub fn quick() -> Self {
        ExperimentScale { data_scale: 128 }
    }
}

/// Metrics shared by every system, extracted from either a FlashAbacus
/// [`flashabacus::RunOutcome`] or a baseline
/// [`fa_baseline::BaselineOutcome`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnifiedOutcome {
    /// Which system produced the outcome.
    pub system: SystemKind,
    /// Workload label (benchmark or mix name).
    pub workload: String,
    /// Total execution time in seconds.
    pub total_seconds: f64,
    /// Aggregate data-processing throughput in MB/s.
    pub throughput_mb_s: f64,
    /// Kernel latency statistics `(min, avg, max)` in seconds.
    pub latency_min_avg_max: (f64, f64, f64),
    /// Kernel completion instants in seconds, ascending (CDF x-values).
    pub completion_times: Vec<f64>,
    /// Energy breakdown in joules.
    pub energy: EnergyBreakdown,
    /// Mean LWP utilization in `[0, 1]` (worker LWPs for FlashAbacus, the
    /// active LWPs for SIMD).
    pub mean_lwp_utilization: f64,
    /// Busy-functional-unit timeline.
    pub fu_timeline: TimeSeries,
    /// Power timeline in watts.
    pub power_timeline: TimeSeries,
}

impl UnifiedOutcome {
    /// Total energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.energy.total_j()
    }
}

/// Builds the homogeneous workload of §5.1: six instances of one PolyBench
/// application.
pub fn homogeneous_workload(bench: PolyBench, scale: ExperimentScale) -> Vec<Application> {
    instantiate_many(
        &[polybench_app(bench, scale.data_scale)],
        &InstancePlan::homogeneous(),
    )
}

/// Builds the heterogeneous workload MX`mix` of §5.1: 24 instances, four of
/// each of the mix's six applications.
pub fn heterogeneous_workload(mix: usize, scale: ExperimentScale) -> Vec<Application> {
    mix_apps(mix, scale.data_scale)
}

/// Builds the graph/big-data workload of §5.6: six instances of one
/// benchmark.
pub fn bigdata_workload(bench: BigDataBench, scale: ExperimentScale) -> Vec<Application> {
    instantiate_many(
        &[bigdata_app(bench, scale.data_scale)],
        &InstancePlan::homogeneous(),
    )
}

/// Runs `apps` on `system` and returns the unified outcome.
///
/// # Panics
///
/// Panics if the FlashAbacus run fails (out of flash space or a scheduler
/// stall), which indicates a harness configuration error rather than a
/// measurable result.
pub fn run_on(system: SystemKind, workload_label: &str, apps: &[Application]) -> UnifiedOutcome {
    match system {
        SystemKind::Simd => {
            let mut sys = ConventionalSystem::new(BaselineConfig::paper_baseline());
            let out = sys.run(apps);
            UnifiedOutcome {
                system,
                workload: workload_label.to_string(),
                total_seconds: out.finished_at.as_secs_f64(),
                throughput_mb_s: out.throughput_mb_s(),
                latency_min_avg_max: out.latency_stats(),
                completion_times: out.completion_cdf().into_iter().map(|(t, _)| t).collect(),
                energy: out.energy,
                mean_lwp_utilization: out.mean_lwp_utilization(),
                fu_timeline: out.fu_timeline,
                power_timeline: out.power_timeline,
            }
        }
        SystemKind::FlashAbacus(policy) => {
            let mut sys = FlashAbacusSystem::new(FlashAbacusConfig::paper_prototype(policy));
            let out = sys
                .run(apps)
                .unwrap_or_else(|e| panic!("FlashAbacus run failed on {workload_label}: {e}"));
            UnifiedOutcome {
                system,
                workload: workload_label.to_string(),
                total_seconds: out.finished_at.as_secs_f64(),
                throughput_mb_s: out.throughput_mb_s(),
                latency_min_avg_max: out.latency_stats(),
                completion_times: out.completion_cdf().into_iter().map(|(t, _)| t).collect(),
                energy: out.energy.breakdown,
                mean_lwp_utilization: out.mean_worker_utilization(),
                fu_timeline: out.fu_timeline,
                power_timeline: out.power_timeline,
            }
        }
    }
}

/// Number of worker threads the campaign runner fans (workload, system)
/// pairs across: the `FA_THREADS` environment variable when set to a
/// positive integer, otherwise the machine's available parallelism.
/// `FA_THREADS=1` forces a fully serial run.
pub fn campaign_threads() -> usize {
    std::env::var("FA_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Runs every (workload, system) pair of a campaign, fanned across
/// [`campaign_threads`] worker threads, and returns the outcomes in the
/// exact order a serial `for workload { for system }` double loop would
/// produce them.
///
/// Every simulation is a pure, deterministic function of its `(system,
/// apps)` inputs — each run owns all of its state, and the dispatch loop
/// in `flashabacus::system` orders completions by (end time, screen
/// reference) with a deterministic tie-break — so the merged results are
/// byte-identical to a serial run regardless of thread count or
/// interleaving; only wall-clock time changes. Threads pull the next job
/// off a shared counter, so long workloads do not serialize behind a
/// static partition.
///
/// # Panics
///
/// Panics if any run fails (propagated from the worker thread by
/// `std::thread::scope`), matching [`run_on`]'s contract.
pub fn run_pairs(workloads: &[(String, Vec<Application>)]) -> Vec<UnifiedOutcome> {
    run_pairs_with_threads(workloads, campaign_threads())
}

/// [`run_pairs`] with an explicit thread count (1 = fully serial). Exposed
/// so the perf harness and tests can compare serial and parallel runs
/// without touching the `FA_THREADS` environment of the whole process.
pub fn run_pairs_with_threads(
    workloads: &[(String, Vec<Application>)],
    threads: usize,
) -> Vec<UnifiedOutcome> {
    let jobs: Vec<(usize, SystemKind)> = workloads
        .iter()
        .enumerate()
        .flat_map(|(wi, _)| SystemKind::all().into_iter().map(move |s| (wi, s)))
        .collect();
    let threads = threads.min(jobs.len()).max(1);
    if threads == 1 {
        return jobs
            .iter()
            .map(|&(wi, system)| {
                let (label, apps) = &workloads[wi];
                run_on(system, label, apps)
            })
            .collect();
    }

    // One pre-indexed slot per job: workers race only on the job counter,
    // and the merge is a plain index-order unwrap.
    let slots: Vec<Mutex<Option<UnifiedOutcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&(wi, system)) = jobs.get(i) else {
                    break;
                };
                let (label, apps) = &workloads[wi];
                let out = run_on(system, label, apps);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job ran to completion")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_labels_match_the_paper() {
        let labels: Vec<&str> = SystemKind::all().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec!["SIMD", "InterSt", "IntraIo", "InterDy", "IntraO3"]
        );
    }

    #[test]
    fn homogeneous_workload_has_six_instances() {
        let apps = homogeneous_workload(PolyBench::Gemm, ExperimentScale::quick());
        assert_eq!(apps.len(), 6);
        assert!(apps.iter().all(|a| a.name == "GEMM"));
    }

    #[test]
    fn heterogeneous_workload_has_24_instances() {
        let apps = heterogeneous_workload(1, ExperimentScale::quick());
        assert_eq!(apps.len(), 24);
    }

    #[test]
    fn all_systems_run_a_small_workload() {
        let scale = ExperimentScale { data_scale: 512 };
        let apps = homogeneous_workload(PolyBench::Gemm, scale);
        for system in SystemKind::all() {
            let out = run_on(system, "GEMM", &apps);
            assert!(out.total_seconds > 0.0, "{}", system.label());
            assert!(out.throughput_mb_s > 0.0, "{}", system.label());
            assert!(out.total_energy_j() > 0.0, "{}", system.label());
            assert_eq!(out.completion_times.len(), 6, "{}", system.label());
        }
    }

    #[test]
    fn flashabacus_beats_simd_on_a_data_intensive_workload() {
        // The headline claim, checked on a scaled-down ATAX batch.
        let scale = ExperimentScale { data_scale: 256 };
        let apps = homogeneous_workload(PolyBench::Atax, scale);
        let simd = run_on(SystemKind::Simd, "ATAX", &apps);
        let fa = run_on(
            SystemKind::FlashAbacus(SchedulerPolicy::IntraO3),
            "ATAX",
            &apps,
        );
        assert!(
            fa.throughput_mb_s > simd.throughput_mb_s,
            "FlashAbacus {:.1} MB/s should beat SIMD {:.1} MB/s",
            fa.throughput_mb_s,
            simd.throughput_mb_s
        );
        assert!(
            fa.total_energy_j() < simd.total_energy_j(),
            "FlashAbacus {:.3} J should use less energy than SIMD {:.3} J",
            fa.total_energy_j(),
            simd.total_energy_j()
        );
    }

    #[test]
    fn scale_from_env_defaults_to_16() {
        // The env var is not set during tests.
        if std::env::var("FA_DATA_SCALE").is_err() {
            assert_eq!(ExperimentScale::from_env().data_scale, 16);
        }
    }

    #[test]
    fn parallel_run_pairs_is_byte_identical_to_serial() {
        let scale = ExperimentScale { data_scale: 512 };
        let workloads: Vec<(String, Vec<Application>)> = vec![
            (
                "GEMM".to_string(),
                homogeneous_workload(PolyBench::Gemm, scale),
            ),
            (
                "ATAX".to_string(),
                homogeneous_workload(PolyBench::Atax, scale),
            ),
        ];
        let serial = run_pairs_with_threads(&workloads, 1);
        let parallel = run_pairs_with_threads(&workloads, 3);
        assert_eq!(serial.len(), 2 * SystemKind::all().len());
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.system, p.system);
            assert_eq!(s.workload, p.workload);
            // Determinism is exact, not approximate: identical bits.
            assert_eq!(s.total_seconds.to_bits(), p.total_seconds.to_bits());
            assert_eq!(s.throughput_mb_s.to_bits(), p.throughput_mb_s.to_bits());
            assert_eq!(
                s.total_energy_j().to_bits(),
                p.total_energy_j().to_bits(),
                "{} on {}",
                s.workload,
                s.system.label()
            );
            assert_eq!(s.completion_times, p.completion_times);
        }
        // The merge preserves the serial (workload, system) iteration order.
        let order: Vec<(String, &str)> = serial
            .iter()
            .map(|o| (o.workload.clone(), o.system.label()))
            .collect();
        let mut expected = Vec::new();
        for (w, _) in &workloads {
            for s in SystemKind::all() {
                expected.push((w.clone(), s.label()));
            }
        }
        assert_eq!(order, expected);
    }
}
