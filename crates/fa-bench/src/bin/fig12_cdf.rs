//! Regenerates Figures 12a and 12b (completion-time CDFs for ATAX and MX1).
use fa_bench::runner::ExperimentScale;
fn main() {
    println!(
        "{}",
        fa_bench::experiments::fig12_cdf::report(ExperimentScale::from_env())
    );
}
