//! Records the harness's own performance — campaign wall-clock (serial vs
//! parallel), per-policy dispatch throughput, the incremental allocator /
//! GC-discovery speedups — plus two *simulated* ablations: the QoS
//! ablation (foreground read p99 under concurrent GC, synchronous vs
//! backgrounded vs budgeted) and the storage-policy ablation (placement ×
//! GC-victim × hot/cold wear spread and migration efficiency). Written to
//! `BENCH_PR10.json`, together with the `shard_scaling` section (the
//! heterogeneous campaign timed at several `FA_SHARDS` settings, asserted
//! bit-identical across shard counts, plus the window-barrier cost of the
//! sharded executor), the `write_shard_scaling` section (the same campaign
//! factor now that program/erase sweeps and GC erase rows ride the sharded
//! lanes too, plus the multi-window program-sweep micro), the
//! `endurance` section: each placement policy churned under the identical
//! seeded wear-out fault plan until injected failures retire enough block
//! rows to kill the device, recording the host bytes that landed first,
//! and the `scaleout` section: the open-loop multi-tenant capacity curve
//! (offered load vs completed-tenant throughput and tail-SLO attainment)
//! plus the online-QoS-governor vs static-budget ablation at the deepest
//! overload point.
//!
//! The wall-clock sections measure the simulator, not the simulated
//! hardware; the `qos_ablation`, `policy_ablation`, and `endurance`
//! sections are simulated time and exactly reproducible. Knobs:
//! `FA_DATA_SCALE` (workload size divisor), `FA_THREADS` (parallel
//! campaign width), `FA_BENCH_OUT` (output path, default
//! `BENCH_PR10.json` in the working directory).
//!
//! Regenerate with:
//! ```text
//! cargo run --release -p fa-bench --bin perfstat
//! ```

use fa_bench::experiments::endurance::endurance_grid;
use fa_bench::experiments::fig12_cdf::{gc_pressure_workload, qos_ablation_modes, run_qos_mode};
use fa_bench::experiments::policy_ablation::{churn_grid, churn_rounds, hot_cold_on_rows};
use fa_bench::experiments::scaleout::{scaleout_report, ScaleoutStat};
use fa_bench::experiments::Campaign;
use fa_bench::perf::{
    group_program_sweep, group_read_sweep, hot_path_backbone, hot_path_sweep,
    hot_path_sweep_tagged, naive_ready_first, naive_victim_groups, populated_flashvisor,
    preloaded_hot_path_backbone, screen_batch, NaiveScanAllocator,
};
use fa_bench::runner::{campaign_threads, run_pairs_with_threads, ExperimentScale};
use fa_kernel::chain::ExecutionChain;
use fa_kernel::model::Application;
use fa_sim::sharded::ShardPlan;
use fa_sim::time::SimTime;
use flashabacus::freespace::{FreeSpaceManager, PlacementPolicy};
use flashabacus::scheduler::{intra_next_ready, SchedulerPolicy};
use std::fmt::Write as _;
use std::time::Instant;

/// One campaign's serial-vs-parallel timing.
struct CampaignStat {
    name: &'static str,
    pairs: usize,
    serial_seconds: f64,
    parallel_seconds: f64,
}

/// One dispatch-loop throughput measurement.
struct DispatchStat {
    policy: SchedulerPolicy,
    screens: usize,
    seconds: f64,
}

/// Incremental-frontier vs full-rescan drain timing at one batch size.
struct FrontierStat {
    screens: usize,
    incremental_seconds: f64,
    rescan_seconds: f64,
}

/// Free-space drain timing: incremental pop vs scan-based allocation.
struct AllocatorStat {
    groups: u64,
    incremental_seconds: f64,
    scan_seconds: f64,
}

/// GC victim-discovery timing: reverse index vs full mapping-table scan.
struct GcDiscoveryStat {
    mapped_groups: u64,
    passes: u64,
    incremental_seconds: f64,
    rescan_seconds: f64,
}

/// One QoS-ablation mode's simulated outcome.
struct QosStat {
    mode: &'static str,
    gc_passes: u64,
    foreground_read_p99_s: f64,
    finish_s: f64,
}

/// Times a full drain of `groups` page groups through the incremental
/// free-space manager and through the old scan-based allocator. Both
/// drains end exhausted; the results are asserted identical.
fn time_allocator(groups: u64) -> AllocatorStat {
    let mut incremental = FreeSpaceManager::new(groups, 8, 4, 8, 256, PlacementPolicy::FirstFree);
    let start = Instant::now();
    let mut popped = 0u64;
    while incremental.allocate().is_some() {
        popped += 1;
    }
    let incremental_seconds = start.elapsed().as_secs_f64();
    assert_eq!(popped, groups);

    let mut naive = NaiveScanAllocator::new(groups);
    let start = Instant::now();
    let mut scanned = 0u64;
    while naive.allocate().is_some() {
        scanned += 1;
    }
    let scan_seconds = start.elapsed().as_secs_f64();
    assert_eq!(scanned, groups);

    AllocatorStat {
        groups,
        incremental_seconds,
        scan_seconds,
    }
}

/// Times `passes` GC victim discoveries over a Flashvisor with
/// `mapped_groups` groups mapped: the reverse-index walk of one block's
/// group range vs the full mapping-table rescan. A separate untimed sweep
/// asserts both sides return the identical victim list for every pass, so
/// the recorded speedup always compares equivalent work.
fn time_gc_discovery(mapped_groups: u64, passes: u64) -> GcDiscoveryStat {
    let v = populated_flashvisor(mapped_groups);
    let config = *v.config();
    let total_blocks = config.flash_geometry.total_blocks();
    // The exact range production GC scans per pass (one shared definition
    // in FlashAbacusConfig — see gc_scan_group_range).
    let range_of = |block: u64| config.gc_scan_group_range(block % total_blocks);

    let start = Instant::now();
    let mut incremental_found = 0u64;
    for pass in 0..passes {
        let (low, high) = range_of(pass);
        incremental_found += v.victim_groups(low, high).len() as u64;
    }
    let incremental_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let mut rescan_found = 0u64;
    for pass in 0..passes {
        let (low, high) = range_of(pass);
        rescan_found += naive_victim_groups(&v, low, high).len() as u64;
    }
    let rescan_seconds = start.elapsed().as_secs_f64();
    assert_eq!(incremental_found, rescan_found);
    for pass in 0..passes {
        let (low, high) = range_of(pass);
        assert_eq!(
            v.victim_groups(low, high),
            naive_victim_groups(&v, low, high),
            "victim discovery diverged on pass {pass}"
        );
    }

    GcDiscoveryStat {
        mapped_groups,
        passes,
        incremental_seconds,
        rescan_seconds,
    }
}

/// Drains a chain through one policy's frontier-based decision path,
/// mimicking the system dispatch loop (pick → mark_running → mark_done)
/// with a bounded number of screens in flight. Returns screens dispatched.
fn drain_chain(policy: SchedulerPolicy, apps: &[Application]) -> usize {
    let mut chain = ExecutionChain::new(apps);
    let kernels: Vec<(usize, usize)> = apps
        .iter()
        .enumerate()
        .flat_map(|(ai, a)| (0..a.kernels.len()).map(move |ki| (ai, ki)))
        .collect();
    let mut in_flight: Vec<fa_kernel::chain::ScreenRef> = Vec::with_capacity(12);
    let mut dispatched = 0usize;
    let mut t = 0u64;
    while !chain.is_complete() {
        while in_flight.len() < 12 {
            let pick = match policy {
                SchedulerPolicy::IntraIo | SchedulerPolicy::IntraO3 => {
                    intra_next_ready(policy, &chain)
                }
                SchedulerPolicy::InterSt | SchedulerPolicy::InterDy => kernels
                    .iter()
                    .find_map(|&(ai, ki)| chain.next_ready_of_kernel(ai, ki)),
            };
            let Some(s) = pick else { break };
            chain.mark_running(s, in_flight.len());
            in_flight.push(s);
            dispatched += 1;
        }
        let Some(s) = in_flight.pop() else {
            panic!("scheduler stalled with nothing in flight");
        };
        t += 10;
        chain.mark_done(s, SimTime::from_us(t));
    }
    dispatched
}

/// Times a full drain of `apps` through the incremental frontier and
/// through the old full-rescan walk.
fn time_frontier(apps: &[Application]) -> FrontierStat {
    let template = ExecutionChain::new(apps);
    let screens = template.total_screens();

    let mut chain = template.clone();
    let start = Instant::now();
    let mut t = 0u64;
    while let Some(s) = chain.first_ready() {
        chain.mark_running(s, 0);
        t += 10;
        chain.mark_done(s, SimTime::from_us(t));
    }
    let incremental_seconds = start.elapsed().as_secs_f64();
    assert!(chain.is_complete());

    let mut chain = template;
    let start = Instant::now();
    let mut t = 0u64;
    while let Some(s) = naive_ready_first(&chain, apps) {
        chain.mark_running(s, 0);
        t += 10;
        chain.mark_done(s, SimTime::from_us(t));
    }
    let rescan_seconds = start.elapsed().as_secs_f64();
    assert!(chain.is_complete());

    FrontierStat {
        screens,
        incremental_seconds,
        rescan_seconds,
    }
}

fn time_campaign(
    name: &'static str,
    workloads: Vec<(String, Vec<Application>)>,
    threads: usize,
) -> CampaignStat {
    let pairs = workloads.len() * 5;
    let start = Instant::now();
    let serial = run_pairs_with_threads(&workloads, 1);
    let serial_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let parallel = run_pairs_with_threads(&workloads, threads);
    let parallel_seconds = start.elapsed().as_secs_f64();
    // The determinism contract, enforced on every perfstat run.
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(
            s.total_seconds.to_bits(),
            p.total_seconds.to_bits(),
            "parallel campaign diverged from serial on {} / {}",
            s.workload,
            s.system.label()
        );
    }
    CampaignStat {
        name,
        pairs,
        serial_seconds,
        parallel_seconds,
    }
}

fn main() {
    let scale = ExperimentScale::from_env();
    let threads = campaign_threads();
    eprintln!(
        "perfstat: data scale 1/{}, {threads} thread(s)",
        scale.data_scale
    );

    let campaigns = [
        time_campaign(
            "homogeneous",
            Campaign::homogeneous_workloads(scale),
            threads,
        ),
        time_campaign(
            "heterogeneous",
            Campaign::heterogeneous_workloads(scale),
            threads,
        ),
        time_campaign("bigdata", Campaign::bigdata_workloads(scale), threads),
    ];

    // Frontier dispatch throughput: how many scheduling decisions per
    // second the incremental ready set sustains, at three batch sizes.
    let mut dispatch = Vec::new();
    let mut frontier = Vec::new();
    for &total in &[128usize, 1024, 8192] {
        let apps = screen_batch(total);
        frontier.push(time_frontier(&apps));
        for policy in SchedulerPolicy::all() {
            // Warm pass (first touch of the allocator), then the timed one.
            let screens = drain_chain(policy, &apps);
            let start = Instant::now();
            let again = drain_chain(policy, &apps);
            let seconds = start.elapsed().as_secs_f64();
            assert_eq!(screens, again);
            dispatch.push(DispatchStat {
                policy,
                screens,
                seconds,
            });
        }
    }

    // Free-space drain: scan-based allocation is O(n²) per drain, so the
    // baseline sizes are capped; the incremental structure also runs the
    // full device to show it stays linear.
    let allocator: Vec<AllocatorStat> = [16_384u64, 65_536, 131_072]
        .iter()
        .map(|&g| time_allocator(g))
        .collect();

    // GC victim discovery at campaign-sized mapping populations.
    let gc_discovery: Vec<GcDiscoveryStat> = [(65_536u64, 512u64), (262_144, 512)]
        .iter()
        .map(|&(groups, passes)| time_gc_discovery(groups, passes))
        .collect();

    // Hot-path per-command cost: the same whole-device program → read →
    // erase sweep with QoS admission and group accounting live on every
    // command, through the per-command submit path and the batched one.
    let hot_sweeps = 8u64;
    let time_sweeps = |sweep: fn(&mut fa_flash::FlashBackbone, SimTime) -> (u64, SimTime)| {
        let mut backbone = hot_path_backbone();
        // Warm pass (first touch of the arenas), then the timed ones.
        let (_, mut t) = sweep(&mut backbone, SimTime::ZERO);
        let start = Instant::now();
        let mut commands = 0u64;
        for _ in 0..hot_sweeps {
            let (c, next) = sweep(&mut backbone, t);
            commands += c;
            t = next;
        }
        (commands, start.elapsed().as_secs_f64())
    };
    let (tagged_commands, tagged_seconds) = time_sweeps(hot_path_sweep_tagged);
    let (batched_commands, batched_seconds) = time_sweeps(hot_path_sweep);

    // Intra-run channel sharding (FA_SHARDS): the heterogeneous campaign,
    // fully serial at the campaign level, with the flash data path sharded
    // per run. The runs are asserted bit-identical across shard counts on
    // every perfstat invocation — sharding may change wall-clock time only.
    let shard_workloads = Campaign::heterogeneous_workloads(scale);
    let mut shard_scaling: Vec<(usize, f64)> = Vec::new();
    let mut shard_signature: Option<Vec<f64>> = None;
    for shards in [1usize, 2, 4, 8] {
        std::env::set_var("FA_SHARDS", shards.to_string());
        let start = Instant::now();
        let outcomes = run_pairs_with_threads(&shard_workloads, 1);
        let seconds = start.elapsed().as_secs_f64();
        let sig: Vec<f64> = outcomes.iter().map(|o| o.total_seconds).collect();
        match &shard_signature {
            None => shard_signature = Some(sig),
            Some(base) => {
                assert_eq!(base.len(), sig.len());
                for (b, s) in base.iter().zip(&sig) {
                    assert_eq!(
                        b.to_bits(),
                        s.to_bits(),
                        "FA_SHARDS={shards} diverged from the 1-shard campaign"
                    );
                }
            }
        }
        shard_scaling.push((shards, seconds));
    }
    std::env::remove_var("FA_SHARDS");

    // Window-barrier cost of the sharded executor, priced on the shared
    // preloaded group-read sweep: the serial submit_group loop vs the
    // sharded executor (one conservative window per section submission).
    let time_read_sweep = |plan: Option<ShardPlan>| {
        let mut backbone = preloaded_hot_path_backbone();
        // Warm pass, then the timed ones.
        let (_, _, mut t) = group_read_sweep(&mut backbone, plan, SimTime::ZERO);
        let start = Instant::now();
        let mut commands = 0u64;
        let mut windows = 0u64;
        for _ in 0..hot_sweeps {
            let (c, w, next) = group_read_sweep(&mut backbone, plan, t);
            commands += c;
            windows += w;
            t = next;
        }
        (commands, windows, start.elapsed().as_secs_f64(), t)
    };
    let (sweep_cmds, sweep_windows, serial_sweep_s, serial_end) = time_read_sweep(None);
    let (s1_cmds, _, shard1_sweep_s, s1_end) = time_read_sweep(Some(ShardPlan::new(1)));
    let (s4_cmds, _, shard4_sweep_s, s4_end) = time_read_sweep(Some(ShardPlan::new(4)));
    // The executor's equivalence contract, enforced before recording.
    assert_eq!(sweep_cmds, s1_cmds);
    assert_eq!(sweep_cmds, s4_cmds);
    assert_eq!(serial_end, s1_end, "1-shard sweep diverged from serial");
    assert_eq!(serial_end, s4_end, "4-shard sweep diverged from serial");

    // Window-barrier cost on the *program* path: the serial per-group
    // `submit_group` loop vs the sharded program lanes under the finite
    // program-sweep lookahead (each section splits into multiple
    // conservative windows, unlike the read sweep's one-per-section). A
    // program sweep fills the device, so each timed iteration starts from
    // a fresh backbone built outside the timer.
    let time_program_sweep = |plan: Option<ShardPlan>| {
        let mut backbone = hot_path_backbone();
        // Warm pass (first touch of the arenas), then the timed ones.
        let _ = group_program_sweep(&mut backbone, plan, SimTime::ZERO);
        let mut commands = 0u64;
        let mut windows = 0u64;
        let mut elapsed = 0.0f64;
        let mut end = SimTime::ZERO;
        for _ in 0..hot_sweeps {
            let mut backbone = hot_path_backbone();
            let start = Instant::now();
            let (c, _, t) = group_program_sweep(&mut backbone, plan, SimTime::ZERO);
            elapsed += start.elapsed().as_secs_f64();
            commands += c;
            windows += backbone.sharded_windows();
            end = t;
        }
        (commands, windows, elapsed, end)
    };
    let (pw_cmds, _, serial_pw_s, serial_pw_end) = time_program_sweep(None);
    let (pw1_cmds, _, shard1_pw_s, pw1_end) = time_program_sweep(Some(ShardPlan::new(1)));
    let (pw4_cmds, pw4_windows, shard4_pw_s, pw4_end) = time_program_sweep(Some(ShardPlan::new(4)));
    assert_eq!(pw_cmds, pw1_cmds);
    assert_eq!(pw_cmds, pw4_cmds);
    assert_eq!(
        serial_pw_end, pw1_end,
        "1-shard program sweep diverged from serial"
    );
    assert_eq!(
        serial_pw_end, pw4_end,
        "4-shard program sweep diverged from serial"
    );

    // The QoS ablation (simulated time, deterministic): foreground read
    // p99 under concurrent GC, synchronous vs background vs budgeted.
    let qos_apps = gc_pressure_workload();
    let qos: Vec<QosStat> = qos_ablation_modes()
        .into_iter()
        .map(|(mode, config)| {
            let out = run_qos_mode(config, &qos_apps);
            QosStat {
                mode,
                gc_passes: out.gc_passes,
                foreground_read_p99_s: out.foreground_read_p99_s,
                finish_s: out.finished_at.as_secs_f64(),
            }
        })
        .collect();

    // The storage-policy ablation (simulated, deterministic): placement ×
    // GC-victim wear spread and migration efficiency, plus the hot/cold
    // separation-on rows (the separation-off partners are the grid's own
    // rows — not re-simulated).
    let rounds = churn_rounds(scale);
    let policy_outcomes: Vec<_> = churn_grid(rounds)
        .into_iter()
        .chain(hot_cold_on_rows(rounds))
        .collect();

    // Endurance-to-death (simulated, deterministic): each placement
    // policy churned under the identical seeded wear-out fault plan until
    // the bad-block remap table strangles the allocator.
    let endurance = endurance_grid();

    // Open-loop scale-out (simulated, deterministic): the multi-tenant
    // capacity curve plus the governor ablation. The wall-clock of the
    // whole experiment is what the perf gate budgets.
    let start = Instant::now();
    let scaleout = scaleout_report(scale);
    let scaleout_seconds = start.elapsed().as_secs_f64();

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"pr\": 10,");
    let _ = writeln!(json, "  \"data_scale\": {},", scale.data_scale);
    let _ = writeln!(json, "  \"threads\": {threads},");
    json.push_str("  \"campaigns\": [\n");
    for (i, c) in campaigns.iter().enumerate() {
        let speedup = if c.parallel_seconds > 0.0 {
            c.serial_seconds / c.parallel_seconds
        } else {
            1.0
        };
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"pairs\": {}, \"serial_seconds\": {:.4}, \"parallel_seconds\": {:.4}, \"speedup\": {:.3}}}",
            c.name, c.pairs, c.serial_seconds, c.parallel_seconds, speedup
        );
        json.push_str(if i + 1 < campaigns.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // The PR6 recovery table: the heterogeneous campaign on the pre-PR6
    // tree (same machine, same scale — measured at the parent commit
    // before the data-path rework) against this run, plus the hot-path
    // per-command cost through both submit paths. The batched path is the
    // one the campaigns use; the per-command path is kept as its baseline.
    const BEFORE_HETEROGENEOUS_SERIAL_S: f64 = 8.0055;
    let after = campaigns
        .iter()
        .find(|c| c.name == "heterogeneous")
        .expect("heterogeneous campaign present");
    json.push_str("  \"data_path_recovery\": {\n");
    let _ = writeln!(
        json,
        "    \"heterogeneous_serial_seconds_before\": {BEFORE_HETEROGENEOUS_SERIAL_S:.4},"
    );
    let _ = writeln!(
        json,
        "    \"heterogeneous_serial_seconds_after\": {:.4},",
        after.serial_seconds
    );
    let _ = writeln!(
        json,
        "    \"speedup\": {:.3},",
        BEFORE_HETEROGENEOUS_SERIAL_S / after.serial_seconds.max(1e-9)
    );
    let _ = writeln!(
        json,
        "    \"ms_per_pair_before\": {:.3},",
        BEFORE_HETEROGENEOUS_SERIAL_S * 1e3 / after.pairs as f64
    );
    let _ = writeln!(
        json,
        "    \"ms_per_pair_after\": {:.3}",
        after.serial_seconds * 1e3 / after.pairs as f64
    );
    json.push_str("  },\n");
    json.push_str("  \"hot_path\": {\n");
    let _ = writeln!(json, "    \"sweeps\": {hot_sweeps},");
    let _ = writeln!(
        json,
        "    \"per_command_path\": {{\"commands\": {}, \"seconds\": {:.4}, \"ns_per_command\": {:.1}}},",
        tagged_commands,
        tagged_seconds,
        tagged_seconds * 1e9 / tagged_commands as f64
    );
    let _ = writeln!(
        json,
        "    \"batched_path\": {{\"commands\": {}, \"seconds\": {:.4}, \"ns_per_command\": {:.1}}}",
        batched_commands,
        batched_seconds,
        batched_seconds * 1e9 / batched_commands as f64
    );
    json.push_str("  },\n");
    // Intra-run channel sharding: the heterogeneous campaign per shard
    // count (bit-identical results, wall-clock only), against the PR 6
    // serial number recorded on this machine, plus the sharded executor's
    // window-barrier cost on the shared preloaded read sweep.
    const PR6_HETEROGENEOUS_SERIAL_S: f64 = 2.2790;
    json.push_str("  \"shard_scaling\": {\n");
    let _ = writeln!(json, "    \"campaign\": \"heterogeneous\",");
    let _ = writeln!(
        json,
        "    \"pr6_serial_seconds\": {PR6_HETEROGENEOUS_SERIAL_S:.4},"
    );
    json.push_str("    \"runs\": [\n");
    let shard1_seconds = shard_scaling[0].1;
    for (i, &(shards, seconds)) in shard_scaling.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"shards\": {}, \"seconds\": {:.4}, \"speedup_vs_1_shard\": {:.3}, \"speedup_vs_pr6\": {:.3}}}",
            shards,
            seconds,
            shard1_seconds / seconds.max(1e-9),
            PR6_HETEROGENEOUS_SERIAL_S / seconds.max(1e-9)
        );
        json.push_str(if i + 1 < shard_scaling.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ],\n");
    json.push_str("    \"window_sync\": {\n");
    let _ = writeln!(json, "      \"commands\": {sweep_cmds},");
    let _ = writeln!(json, "      \"syncs\": {sweep_windows},");
    let _ = writeln!(
        json,
        "      \"serial_loop\": {{\"seconds\": {:.4}, \"ns_per_command\": {:.1}}},",
        serial_sweep_s,
        serial_sweep_s * 1e9 / sweep_cmds as f64
    );
    let _ = writeln!(
        json,
        "      \"sharded_1\": {{\"seconds\": {:.4}, \"ns_per_command\": {:.1}}},",
        shard1_sweep_s,
        shard1_sweep_s * 1e9 / sweep_cmds as f64
    );
    let _ = writeln!(
        json,
        "      \"sharded_4\": {{\"seconds\": {:.4}, \"ns_per_command\": {:.1}}},",
        shard4_sweep_s,
        shard4_sweep_s * 1e9 / sweep_cmds as f64
    );
    let _ = writeln!(
        json,
        "      \"barrier_overhead_ns_per_sync\": {:.1}",
        (shard4_sweep_s - serial_sweep_s) * 1e9 / sweep_windows as f64
    );
    json.push_str("    }\n");
    json.push_str("  },\n");
    // Write-path sharding: the campaign factor above now has program/erase
    // sweeps and GC erase rows riding the sharded lanes too, so record the
    // 4-vs-1-shard campaign factor under its own key (the perf gate budgets
    // it), plus the program-sweep micro — multi-window per section under
    // the finite lookahead, asserted physics-identical before timing.
    json.push_str("  \"write_shard_scaling\": {\n");
    let shard4_seconds = shard_scaling
        .iter()
        .find(|&&(s, _)| s == 4)
        .map(|&(_, t)| t)
        .expect("shard sweep covers 4 shards");
    let _ = writeln!(
        json,
        "    \"campaign_sharded_4_vs_1_shard_factor\": {:.3},",
        shard4_seconds / shard1_seconds.max(1e-9)
    );
    json.push_str("    \"program_window_sync\": {\n");
    let _ = writeln!(json, "      \"commands\": {pw_cmds},");
    let _ = writeln!(json, "      \"syncs\": {pw4_windows},");
    let _ = writeln!(
        json,
        "      \"serial_loop\": {{\"seconds\": {:.4}, \"ns_per_command\": {:.1}}},",
        serial_pw_s,
        serial_pw_s * 1e9 / pw_cmds as f64
    );
    let _ = writeln!(
        json,
        "      \"sharded_1\": {{\"seconds\": {:.4}, \"ns_per_command\": {:.1}}},",
        shard1_pw_s,
        shard1_pw_s * 1e9 / pw_cmds as f64
    );
    let _ = writeln!(
        json,
        "      \"sharded_4\": {{\"seconds\": {:.4}, \"ns_per_command\": {:.1}}},",
        shard4_pw_s,
        shard4_pw_s * 1e9 / pw_cmds as f64
    );
    let _ = writeln!(
        json,
        "      \"barrier_overhead_ns_per_sync\": {:.1}",
        (shard4_pw_s - serial_pw_s) * 1e9 / pw4_windows.max(1) as f64
    );
    json.push_str("    }\n");
    json.push_str("  },\n");
    json.push_str("  \"frontier_vs_rescan\": [\n");
    for (i, f) in frontier.iter().enumerate() {
        // Clamp the denominator: a sub-resolution timing must not emit an
        // `inf` token, which would make the JSON document unparseable.
        let speedup = f.rescan_seconds / f.incremental_seconds.max(1e-9);
        let _ = write!(
            json,
            "    {{\"screens\": {}, \"incremental_seconds\": {:.6}, \"rescan_seconds\": {:.6}, \"speedup\": {:.1}}}",
            f.screens, f.incremental_seconds, f.rescan_seconds, speedup
        );
        json.push_str(if i + 1 < frontier.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"dispatch_throughput\": [\n");
    for (i, d) in dispatch.iter().enumerate() {
        let rate = d.screens as f64 / d.seconds.max(1e-9);
        let _ = write!(
            json,
            "    {{\"policy\": \"{}\", \"screens\": {}, \"seconds\": {:.6}, \"screens_per_sec\": {:.0}}}",
            d.policy.label(),
            d.screens,
            d.seconds,
            rate
        );
        json.push_str(if i + 1 < dispatch.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"allocator_drain\": [\n");
    for (i, a) in allocator.iter().enumerate() {
        // Clamp the denominator: a sub-resolution timing must not emit an
        // `inf` token, which would make the JSON document unparseable.
        let speedup = a.scan_seconds / a.incremental_seconds.max(1e-9);
        let _ = write!(
            json,
            "    {{\"groups\": {}, \"incremental_seconds\": {:.6}, \"scan_seconds\": {:.6}, \"speedup\": {:.1}}}",
            a.groups, a.incremental_seconds, a.scan_seconds, speedup
        );
        json.push_str(if i + 1 < allocator.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"gc_discovery\": [\n");
    for (i, g) in gc_discovery.iter().enumerate() {
        let speedup = g.rescan_seconds / g.incremental_seconds.max(1e-9);
        let _ = write!(
            json,
            "    {{\"mapped_groups\": {}, \"passes\": {}, \"incremental_seconds\": {:.6}, \"rescan_seconds\": {:.6}, \"speedup\": {:.1}}}",
            g.mapped_groups, g.passes, g.incremental_seconds, g.rescan_seconds, speedup
        );
        json.push_str(if i + 1 < gc_discovery.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    // Simulated (deterministic) foreground tail under concurrent GC; the
    // final field is the unbudgeted-over-budgeted p99 ratio — the isolation
    // win the per-owner budgets buy.
    json.push_str("  \"qos_ablation\": [\n");
    for (i, q) in qos.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mode\": \"{}\", \"gc_passes\": {}, \"foreground_read_p99_ms\": {:.6}, \"batch_finish_ms\": {:.6}}}",
            q.mode,
            q.gc_passes,
            q.foreground_read_p99_s * 1e3,
            q.finish_s * 1e3
        );
        json.push_str(if i + 1 < qos.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Placement × GC-victim × hot/cold: wear spread over the data blocks
    // and GC migration efficiency, identical churn per combination.
    let _ = writeln!(json, "  \"policy_ablation_rounds\": {rounds},");
    json.push_str("  \"policy_ablation\": [\n");
    for (i, p) in policy_outcomes.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"placement\": \"{}\", \"gc_victim\": \"{}\", \"hot_threshold\": {}, \"wear_min\": {}, \"wear_max\": {}, \"wear_spread\": {}, \"wear_stddev\": {:.4}, \"migrated_bytes_per_reclaimed_byte\": {:.5}, \"hot_steer_rate\": {:.4}}}",
            p.placement,
            p.gc_victim,
            // Disabled is `null`, never 0 — threshold 0 is a legal config
            // (every write hot) and must stay distinguishable.
            p.hot_threshold
                .map_or("null".to_string(), |t| t.to_string()),
            p.wear_min,
            p.wear_max,
            p.wear_spread(),
            p.wear_stddev,
            p.migrated_per_reclaimed,
            p.hot_steer_rate
        );
        json.push_str(if i + 1 < policy_outcomes.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    // Bytes-to-death per placement policy under the shared seeded
    // wear-out fault plan (injected program/erase failures condemn
    // blocks; condemned blocks retire whole rows).
    json.push_str("  \"endurance\": [\n");
    for (i, e) in endurance.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"placement\": \"{}\", \"died\": {}, \"host_bytes_written\": {}, \"rounds_completed\": {}, \"rows_retired\": {}, \"blocks_condemned\": {}, \"program_failures\": {}, \"erase_failures\": {}}}",
            e.placement,
            e.died,
            e.host_bytes_written,
            e.rounds_completed,
            e.rows_retired,
            e.blocks_condemned,
            e.program_failures,
            e.erase_failures
        );
        json.push_str(if i + 1 < endurance.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // Open-loop scale-out: the capacity curve (offered load vs completed
    // throughput and tail-SLO attainment) and the governor-vs-static
    // ablation at the deepest overload point — all simulated time, plus
    // the harness wall-clock the perf gate budgets.
    let stat_json = |s: &ScaleoutStat| {
        format!(
            "{{\"rate_multiplier\": {:.2}, \"rate_per_s\": {:.1}, \"arrived\": {}, \
             \"admitted\": {}, \"queued\": {}, \"shed\": {}, \"completed\": {}, \
             \"completed_tenants_per_s\": {:.1}, \"slo_attainment\": {:.4}, \
             \"sojourn_p50_ms\": {:.4}, \"sojourn_p99_ms\": {:.4}, \"sojourn_p999_ms\": {:.4}, \
             \"fairness\": {:.4}, \"governor_updates\": {}}}",
            s.rate_multiplier,
            s.rate_per_s,
            s.arrived,
            s.admitted,
            s.queued,
            s.shed,
            s.completed,
            s.completed_tenants_per_s,
            s.slo_attainment,
            s.sojourn_p50_s * 1e3,
            s.sojourn_p99_s * 1e3,
            s.sojourn_p999_s * 1e3,
            s.fairness,
            s.governor_updates
        )
    };
    json.push_str("  \"scaleout\": {\n");
    let _ = writeln!(json, "    \"tenants_per_campaign\": {},", scaleout.tenants);
    let _ = writeln!(
        json,
        "    \"measured_capacity_tenants_per_s\": {:.1},",
        scaleout.base_rate_per_s
    );
    let _ = writeln!(
        json,
        "    \"tail_slo_ms\": {:.4},",
        scaleout.slo_limit_s * 1e3
    );
    json.push_str("    \"capacity_curve\": [\n");
    for (i, s) in scaleout.curve.iter().enumerate() {
        let _ = write!(json, "      {}", stat_json(s));
        json.push_str(if i + 1 < scaleout.curve.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ],\n");
    json.push_str("    \"governor_ablation\": {\n");
    let _ = writeln!(
        json,
        "      \"rate_per_s\": {:.1},",
        scaleout.ablation.rate_per_s
    );
    let _ = writeln!(
        json,
        "      \"governed\": {},",
        stat_json(&scaleout.ablation.governed)
    );
    let _ = writeln!(
        json,
        "      \"static_budgets\": {}",
        stat_json(&scaleout.ablation.static_budgets)
    );
    json.push_str("    },\n");
    let _ = writeln!(json, "    \"scaleout_seconds\": {scaleout_seconds:.4}");
    json.push_str("  },\n");
    // Headline ratios: how much LeastWorn narrows the erase spread vs
    // FirstFree (same greedy victims), and how much the smartest victim
    // policy cuts migrated-bytes-per-reclaimed-byte vs round-robin.
    let find = |placement: &str, gc: &str| {
        policy_outcomes
            .iter()
            .find(|p| p.placement == placement && p.gc_victim == gc && p.hot_threshold.is_none())
            .expect("grid covers the combination")
    };
    let ff_spread = find("FirstFree", "GreedyMinValid").wear_spread() as f64;
    let lw_spread = find("LeastWorn", "GreedyMinValid").wear_spread() as f64;
    let rr_eff = find("FirstFree", "RoundRobin").migrated_per_reclaimed;
    let best_eff = find("FirstFree", "GreedyMinValid")
        .migrated_per_reclaimed
        .min(find("FirstFree", "CostBenefit").migrated_per_reclaimed);
    let _ = writeln!(
        json,
        "  \"wear_spread_narrowing\": {:.3},",
        ff_spread / lw_spread.max(1.0)
    );
    let _ = writeln!(
        json,
        "  \"gc_migration_efficiency_improvement\": {:.3},",
        rr_eff / best_eff.max(1e-12)
    );
    let unbudgeted = qos
        .iter()
        .find(|q| q.mode == "bg-unbudgeted")
        .map(|q| q.foreground_read_p99_s)
        .unwrap_or(0.0);
    let budgeted = qos
        .iter()
        .find(|q| q.mode == "bg-budgeted")
        .map(|q| q.foreground_read_p99_s)
        .unwrap_or(0.0);
    let _ = writeln!(
        json,
        "  \"qos_p99_improvement\": {:.3}",
        unbudgeted / budgeted.max(1e-12)
    );
    json.push_str("}\n");

    let out_path = std::env::var("FA_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR10.json".to_string());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("{json}");
    eprintln!("perfstat: wrote {out_path}");
}
