//! Regenerates Figures 16a and 16b (graph / big-data applications).
use fa_bench::experiments::{fig16_bigdata, Campaign};
use fa_bench::runner::ExperimentScale;
fn main() {
    let campaign = Campaign::bigdata(ExperimentScale::from_env());
    println!("{}", fig16_bigdata::report(&campaign));
}
