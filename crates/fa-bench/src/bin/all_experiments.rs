//! Runs every table and figure of the evaluation and prints a consolidated
//! report (the source for `EXPERIMENTS.md`).
use fa_bench::experiments::{
    fig10_throughput, fig11_latency, fig12_cdf, fig13_energy, fig14_utilization, fig15_timeline,
    fig16_bigdata, fig3_motivation, tables, Campaign,
};
use fa_bench::runner::{ExperimentScale, SystemKind};
use flashabacus::SchedulerPolicy;

fn main() {
    let scale = ExperimentScale::from_env();
    println!(
        "FlashAbacus reproduction — full evaluation (data scale 1/{})\n",
        scale.data_scale
    );
    println!("{}", tables::table1());
    println!("{}", tables::table2());
    println!("{}", fig3_motivation::report_sensitivity(scale));
    println!("{}", fig3_motivation::report_breakdown(scale));

    let homogeneous = Campaign::homogeneous(scale);
    let heterogeneous = Campaign::heterogeneous(scale);
    println!("{}", fig10_throughput::report_homogeneous(&homogeneous));
    println!("{}", fig10_throughput::report_heterogeneous(&heterogeneous));
    println!("{}", fig11_latency::report_homogeneous(&homogeneous));
    println!("{}", fig11_latency::report_heterogeneous(&heterogeneous));
    println!("{}", fig12_cdf::report(scale));
    println!("{}", fig13_energy::report_homogeneous(&homogeneous));
    println!("{}", fig13_energy::report_heterogeneous(&heterogeneous));
    println!("{}", fig14_utilization::report_homogeneous(&homogeneous));
    println!(
        "{}",
        fig14_utilization::report_heterogeneous(&heterogeneous)
    );
    println!("{}", fig15_timeline::report(scale));

    let bigdata = Campaign::bigdata(scale);
    println!("{}", fig16_bigdata::report(&bigdata));

    let o3 = SystemKind::FlashAbacus(SchedulerPolicy::IntraO3);
    println!(
        "\nHeadline comparison (IntraO3 vs SIMD): homogeneous energy saving {:.1}%, heterogeneous energy saving {:.1}%",
        fig13_energy::mean_energy_saving(&homogeneous, o3) * 100.0,
        fig13_energy::mean_energy_saving(&heterogeneous, o3) * 100.0,
    );
    let mut ratios = Vec::new();
    for w in homogeneous
        .workloads
        .iter()
        .chain(heterogeneous.workloads.iter())
    {
        let campaign = if homogeneous.workloads.contains(w) {
            &homogeneous
        } else {
            &heterogeneous
        };
        let simd = campaign.expect(w, SystemKind::Simd).throughput_mb_s;
        let fa = campaign.expect(w, o3).throughput_mb_s;
        if simd > 0.0 {
            ratios.push(fa / simd);
        }
    }
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    println!(
        "Headline comparison (IntraO3 vs SIMD): mean throughput improvement {:.0}% across all workloads",
        (mean_ratio - 1.0) * 100.0
    );
}
