//! Open-loop scale-out smoke: capacity curve + governor ablation.
//!
//! Runs the seeded multi-tenant traffic experiment at `FA_DATA_SCALE`
//! (CI uses 256 for a small tenant count) with the online QoS governor
//! enabled, prints the capacity curve and the governor-vs-static-budget
//! ablation, and exits nonzero if the SLO report comes back empty or
//! malformed.
//!
//! When `FA_ARRIVALS` is set, the binary instead runs that single arrival
//! plan over the tenant templates (governor on) and prints its stats and
//! campaign digest — the same spec → same digest, byte for byte.

use fa_bench::experiments::scaleout::{
    render_scaleout, run_scaleout_campaign, scaleout_report, scaleout_tenants,
};
use fa_bench::runner::ExperimentScale;
use fa_sim::arrivals::ArrivalPlan;
use fa_workloads::tenants::tenant_templates;

fn main() {
    let scale = ExperimentScale::from_env();

    if let Some(plan) = ArrivalPlan::from_env().unwrap_or_else(|e| panic!("bad FA_ARRIVALS: {e}")) {
        let templates = tenant_templates(scale.data_scale);
        assert!(
            plan.templates <= templates.len(),
            "FA_ARRIVALS draws from {} templates but only {} exist",
            plan.templates,
            templates.len()
        );
        eprintln!(
            "scaleout: FA_ARRIVALS campaign, {} tenants at {:.0}/s",
            plan.tenants, plan.rate_per_s
        );
        let report = run_scaleout_campaign(&templates, &plan, true);
        println!(
            "arrived {} admitted {} queued {} shed {} completed {} governor_updates {}",
            report.outcome.tenants_arrived,
            report.outcome.tenants_admitted,
            report.outcome.tenants_queued,
            report.outcome.tenants_shed,
            report
                .tenants
                .iter()
                .filter(|t| t.completed_at.is_some())
                .count(),
            report.outcome.governor_updates,
        );
        let digest = report.digest();
        println!(
            "digest: {} lines, {} bytes",
            digest.lines().count(),
            digest.len()
        );
        eprintln!("scaleout: OK");
        return;
    }

    eprintln!(
        "scaleout: data scale 1/{}, {} tenants per campaign, governor on",
        scale.data_scale,
        scaleout_tenants(scale)
    );
    let report = scaleout_report(scale);
    println!("{}", render_scaleout(&report));

    // The CI gate: the SLO report must be non-empty and well-formed.
    assert!(!report.curve.is_empty(), "capacity curve is empty");
    assert!(report.slo_limit_s > 0.0, "tail SLO never calibrated");
    for point in &report.curve {
        assert!(point.arrived > 0, "a curve point saw no arrivals");
        assert!(point.completed > 0, "a curve point completed no tenants");
        assert!(
            (0.0..=1.0).contains(&point.slo_attainment),
            "SLO attainment out of range: {}",
            point.slo_attainment
        );
    }
    // Light load must meet the tail SLO it defined.
    assert!(
        report.curve[0].slo_attainment > 0.9,
        "light-load SLO attainment {:.3} — calibration broken",
        report.curve[0].slo_attainment
    );
    assert!(
        report.ablation.governed.governor_updates > 0,
        "governor never retuned budgets at the overload point"
    );
    assert_eq!(
        report.ablation.static_budgets.governor_updates, 0,
        "static-budget ablation ran the governor"
    );
    eprintln!("scaleout: OK");
}
