//! Renders the policy-ablation figure: placement × GC-victim churn grid,
//! hot/cold separation ablation, and full-system endurance rows.
//!
//! ```text
//! cargo run --release -p fa-bench --bin policy_ablation
//! ```
//!
//! `FA_DATA_SCALE` scales the churn depth down for smokes.

use fa_bench::experiments::policy_ablation;
use fa_bench::runner::ExperimentScale;

fn main() {
    println!("{}", policy_ablation::report(ExperimentScale::from_env()));
}
