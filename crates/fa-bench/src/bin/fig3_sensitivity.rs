//! Regenerates Figures 3b and 3c (serial-fraction sensitivity study).
use fa_bench::runner::ExperimentScale;
fn main() {
    println!(
        "{}",
        fa_bench::experiments::fig3_motivation::report_sensitivity(ExperimentScale::from_env())
    );
}
