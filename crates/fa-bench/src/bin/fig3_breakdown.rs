//! Regenerates Figures 3d and 3e (time and energy breakdown of the
//! conventional system).
use fa_bench::runner::ExperimentScale;
fn main() {
    println!(
        "{}",
        fa_bench::experiments::fig3_motivation::report_breakdown(ExperimentScale::from_env())
    );
}
