//! Regenerates Figures 13a and 13b (energy decomposition normalized to SIMD).
use fa_bench::experiments::{fig13_energy, Campaign};
use fa_bench::runner::{ExperimentScale, SystemKind};
use flashabacus::SchedulerPolicy;
fn main() {
    let scale = ExperimentScale::from_env();
    let homogeneous = Campaign::homogeneous(scale);
    println!("{}", fig13_energy::report_homogeneous(&homogeneous));
    let heterogeneous = Campaign::heterogeneous(scale);
    println!("{}", fig13_energy::report_heterogeneous(&heterogeneous));
    let saving_h = fig13_energy::mean_energy_saving(
        &homogeneous,
        SystemKind::FlashAbacus(SchedulerPolicy::IntraO3),
    );
    let saving_x = fig13_energy::mean_energy_saving(
        &heterogeneous,
        SystemKind::FlashAbacus(SchedulerPolicy::IntraO3),
    );
    println!(
        "Mean IntraO3 energy saving vs SIMD: homogeneous {:.1}%, heterogeneous {:.1}%",
        saving_h * 100.0,
        saving_x * 100.0
    );
}
