//! Regenerates Figures 11a and 11b (latency normalized to SIMD).
use fa_bench::experiments::{fig11_latency, Campaign};
use fa_bench::runner::ExperimentScale;
fn main() {
    let scale = ExperimentScale::from_env();
    let homogeneous = Campaign::homogeneous(scale);
    println!("{}", fig11_latency::report_homogeneous(&homogeneous));
    let heterogeneous = Campaign::heterogeneous(scale);
    println!("{}", fig11_latency::report_heterogeneous(&heterogeneous));
}
