//! Regenerates Figures 15a and 15b (FU utilization and power over time).
use fa_bench::runner::ExperimentScale;
fn main() {
    println!(
        "{}",
        fa_bench::experiments::fig15_timeline::report(ExperimentScale::from_env())
    );
}
