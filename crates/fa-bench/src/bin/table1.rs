//! Regenerates Table 1 (hardware specification).
fn main() {
    println!("{}", fa_bench::experiments::tables::table1());
}
