//! Regenerates Figures 10a and 10b (throughput of the five systems).
use fa_bench::experiments::{fig10_throughput, Campaign};
use fa_bench::runner::ExperimentScale;
fn main() {
    let scale = ExperimentScale::from_env();
    let homogeneous = Campaign::homogeneous(scale);
    println!("{}", fig10_throughput::report_homogeneous(&homogeneous));
    let heterogeneous = Campaign::heterogeneous(scale);
    println!("{}", fig10_throughput::report_heterogeneous(&heterogeneous));
}
