//! Regenerates Figures 14a and 14b (LWP utilization).
use fa_bench::experiments::{fig14_utilization, Campaign};
use fa_bench::runner::ExperimentScale;
fn main() {
    let scale = ExperimentScale::from_env();
    let homogeneous = Campaign::homogeneous(scale);
    println!("{}", fig14_utilization::report_homogeneous(&homogeneous));
    let heterogeneous = Campaign::heterogeneous(scale);
    println!(
        "{}",
        fig14_utilization::report_heterogeneous(&heterogeneous)
    );
}
