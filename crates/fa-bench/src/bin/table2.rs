//! Regenerates Table 2 (workload characteristics and mix compositions).
fn main() {
    println!("{}", fa_bench::experiments::tables::table2());
}
