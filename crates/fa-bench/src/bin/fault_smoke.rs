//! Fault-injection smoke: the CI gate for PR 8's fault model.
//!
//! Three checks, all deterministic:
//!
//! 1. **Campaign under faults** — the fig10 homogeneous campaign runs to
//!    completion with a seeded probabilistic fault plan plus a mid-run
//!    power loss armed via `FA_FAULTS` (every simulated run absorbs its
//!    injected failures, crashes once, replays its journal, and
//!    finishes).
//! 2. **Seeded reproducibility** — the GC-pressure workload runs twice
//!    under the same scripted-plus-probabilistic plan; fault trace,
//!    retirement table, final mapping, and finish time must be
//!    bit-identical.
//! 3. **Power-loss replay** — a crash at half the fault-free finish time
//!    must recover exactly the reference run's logical content.
//!
//! Scale via `FA_DATA_SCALE` (CI uses 256). Exits nonzero on any
//! violation.

use fa_bench::experiments::fig12_cdf::{gc_pressure_config, gc_pressure_workload};
use fa_bench::experiments::{fig10_throughput, Campaign};
use fa_bench::runner::ExperimentScale;
use fa_flash::FaultPlan;
use flashabacus::scheduler::SchedulerPolicy;
use flashabacus::FlashAbacusSystem;
use std::sync::Arc;

fn main() {
    // 1. The fig10 campaign with faults and one power loss per run. The
    // plan is injected through the environment — the same path a user
    // would take — unless the caller already chose one.
    if std::env::var("FA_FAULTS").is_err() {
        std::env::set_var(
            "FA_FAULTS",
            "seed=23,program=0.00005,erase=0.00002,retire_after=4,power_loss_ns=2000000",
        );
    }
    let scale = ExperimentScale::from_env();
    eprintln!(
        "fault-smoke: campaign at data scale 1/{} under FA_FAULTS={}",
        scale.data_scale,
        std::env::var("FA_FAULTS").unwrap_or_default()
    );
    let homogeneous = Campaign::homogeneous(scale);
    println!("{}", fig10_throughput::report_homogeneous(&homogeneous));
    std::env::remove_var("FA_FAULTS");

    // 2. Seeded reproducibility: identical fault trace and end state
    // twice (the PR 8 acceptance criterion, at CI scale).
    let apps = gc_pressure_workload();
    let plan = FaultPlan::parse(
        "seed=7,program=0.0002,erase=0.0001,retire_after=2,\
         script=program@c0.d0.b3.n1,script=program@c0.d0.b3.n2",
    )
    .expect("smoke plan parses");
    let run_faulty = || {
        let mut system =
            FlashAbacusSystem::without_env_faults(gc_pressure_config(SchedulerPolicy::InterDy));
        system.install_fault_plan(Arc::new(plan.clone()));
        let out = system.run(&apps).expect("faulty run completes");
        let stats = system.flashvisor().backbone().fault_stats();
        let retired = system.flashvisor().retired_rows().to_vec();
        let mapped: Vec<(u64, u64)> = system.flashvisor().mapped_groups().collect();
        (out.finished_at, stats, retired, mapped)
    };
    let (t1, s1, r1, m1) = run_faulty();
    let (t2, s2, r2, m2) = run_faulty();
    assert!(s1.injected_program_failures >= 2, "scripted faults missed");
    assert!(r1.contains(&3), "scripted block row not retired: {r1:?}");
    assert_eq!(t1, t2, "finish time not reproducible");
    assert_eq!(s1, s2, "fault trace not reproducible");
    assert_eq!(r1, r2, "retirement table not reproducible");
    assert_eq!(m1, m2, "post-fault mapping not reproducible");
    eprintln!(
        "fault-smoke: reproducible fault trace ({} program / {} erase failures, rows {:?} retired)",
        s1.injected_program_failures, s1.injected_erase_failures, r1
    );

    // 3. Power-loss replay reproduces the fault-free logical content.
    let apps = gc_pressure_workload();
    let config = gc_pressure_config(SchedulerPolicy::InterDy);
    let mut reference = FlashAbacusSystem::without_env_faults(config);
    let ref_out = reference.run(&apps).expect("reference run completes");
    let crash_ns = ref_out.finished_at.as_ns() / 2;
    let crash_plan =
        FaultPlan::parse(&format!("power_loss_ns={crash_ns}")).expect("crash plan parses");
    let mut crashing = FlashAbacusSystem::without_env_faults(config);
    crashing.install_fault_plan(Arc::new(crash_plan));
    crashing.run(&apps).expect("crashing run completes");
    assert_eq!(crashing.recoveries(), 1, "power loss did not fire");
    let logical = |s: &FlashAbacusSystem| {
        let mut v: Vec<u64> = s.flashvisor().mapped_groups().map(|(lg, _)| lg).collect();
        v.sort_unstable();
        v
    };
    assert_eq!(
        logical(&reference),
        logical(&crashing),
        "journal replay lost logical content"
    );
    eprintln!(
        "fault-smoke: power loss at {} ns recovered {} logical groups exactly",
        crash_ns,
        logical(&crashing).len()
    );
    eprintln!("fault-smoke: OK");
}
