//! Shared helpers for the harness's self-measurement (the `perfstat`
//! binary and the `frontier` bench): a synthetic dispatch-shaped batch and
//! the old full-rescan readiness walk kept as the comparison baseline.
//!
//! Both consumers must measure the *same* batch shape and the *same*
//! baseline algorithm, or the recorded `BENCH_PR2.json` numbers and the
//! microbenchmark would silently drift apart — hence one definition here.
//! (The frontier-vs-oracle *property test* deliberately does not use these
//! helpers: its oracle must stay independent of the code under test.)

use fa_kernel::chain::{ExecutionChain, ScreenRef, ScreenState};
use fa_kernel::instance::{instantiate_many, InstancePlan};
use fa_kernel::model::{AppId, Application, ApplicationBuilder, DataSection};
use fa_platform::lwp::InstructionMix;

/// A synthetic batch totalling roughly `total_screens` screens spread over
/// 8 instances with dependent microblocks — the shape the ready frontier
/// has to chew through, without any simulation around it.
pub fn screen_batch(total_screens: usize) -> Vec<Application> {
    let instances = 8;
    let screens_per_microblock = 4;
    let microblocks = (total_screens / (instances * screens_per_microblock)).max(1);
    let mix = InstructionMix::new(40_000, 0.4, 0.1);
    let blocks: Vec<(usize, InstructionMix, u64, u64)> = (0..microblocks)
        .map(|_| (screens_per_microblock, mix, 4096u64, 512u64))
        .collect();
    let template = ApplicationBuilder::new("perf")
        .kernel(
            "perf-k0",
            DataSection {
                flash_base: 0,
                input_bytes: 4096 * microblocks as u64,
                output_bytes: 512 * microblocks as u64,
            },
            &blocks,
        )
        .build(AppId(0));
    instantiate_many(
        &[template],
        &InstancePlan {
            instances_per_app: instances,
            ..Default::default()
        },
    )
}

/// Rebuilds the ready list the way `ExecutionChain::ready_screens` used
/// to: a walk over every app × kernel × microblock × screen of the batch,
/// checking eligibility and state as it goes. O(S) per call, O(S²) per
/// schedule — the baseline the incremental frontier replaces.
pub fn naive_ready_screens(chain: &ExecutionChain, apps: &[Application]) -> Vec<ScreenRef> {
    let mut ready = Vec::new();
    for (ai, app) in apps.iter().enumerate() {
        for (ki, kernel) in app.kernels.iter().enumerate() {
            for (mi, mblock) in kernel.microblocks.iter().enumerate() {
                if !chain.microblock_eligible(ai, ki, mi) {
                    continue;
                }
                for si in 0..mblock.screens.len() {
                    let r = ScreenRef {
                        app: ai,
                        kernel: ki,
                        microblock: mi,
                        screen: si,
                    };
                    if matches!(chain.state(r), Some(ScreenState::Pending)) {
                        ready.push(r);
                    }
                }
            }
        }
    }
    ready
}

/// The head of [`naive_ready_screens`] without materializing the list —
/// still a full walk past every completed screen before the first pending
/// one, so a drain through it stays O(S²).
pub fn naive_ready_first(chain: &ExecutionChain, apps: &[Application]) -> Option<ScreenRef> {
    for (ai, app) in apps.iter().enumerate() {
        for (ki, kernel) in app.kernels.iter().enumerate() {
            for (mi, mblock) in kernel.microblocks.iter().enumerate() {
                if !chain.microblock_eligible(ai, ki, mi) {
                    continue;
                }
                for si in 0..mblock.screens.len() {
                    let r = ScreenRef {
                        app: ai,
                        kernel: ki,
                        microblock: mi,
                        screen: si,
                    };
                    if matches!(chain.state(r), Some(ScreenState::Pending)) {
                        return Some(r);
                    }
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_has_roughly_the_requested_screen_count() {
        let apps = screen_batch(1024);
        let chain = ExecutionChain::new(&apps);
        assert_eq!(chain.total_screens(), 1024);
        assert_eq!(apps.len(), 8);
    }

    #[test]
    fn naive_walk_agrees_with_the_frontier() {
        let apps = screen_batch(128);
        let mut chain = ExecutionChain::new(&apps);
        let mut t = 0u64;
        loop {
            assert_eq!(naive_ready_screens(&chain, &apps), chain.ready_screens());
            assert_eq!(naive_ready_first(&chain, &apps), chain.first_ready());
            let Some(s) = chain.first_ready() else { break };
            chain.mark_running(s, 0);
            t += 10;
            chain.mark_done(s, fa_sim::time::SimTime::from_us(t));
        }
        assert!(chain.is_complete());
    }
}
