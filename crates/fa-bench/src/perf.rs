//! Shared helpers for the harness's self-measurement (the `perfstat`
//! binary and the microbenchmarks): a synthetic dispatch-shaped batch, the
//! old full-rescan readiness walk, the scan-based allocator, and the
//! full-table GC victim scan — each kept as the comparison baseline its
//! incremental replacement is measured against.
//!
//! All consumers must measure the *same* state and the *same* baseline
//! algorithms, or the recorded `BENCH_PR*.json` numbers and the
//! microbenchmarks would silently drift apart — hence one definition here.
//! (The oracle *property tests* deliberately do not use these helpers:
//! their oracles must stay independent of the code under test.)

use fa_flash::{
    FlashBackbone, FlashCommand, FlashGeometry, FlashOp, FlashTiming, OwnerId, QosBudgets,
};
use fa_kernel::chain::{ExecutionChain, ScreenRef, ScreenState};
use fa_kernel::instance::{instantiate_many, InstancePlan};
use fa_kernel::model::{AppId, Application, ApplicationBuilder, DataSection};
use fa_platform::lwp::InstructionMix;
use fa_sim::sharded::ShardPlan;
use fa_sim::time::SimTime;
use flashabacus::config::FlashAbacusConfig;
use flashabacus::scheduler::SchedulerPolicy;
use flashabacus::Flashvisor;

/// A synthetic batch totalling roughly `total_screens` screens spread over
/// 8 instances with dependent microblocks — the shape the ready frontier
/// has to chew through, without any simulation around it.
pub fn screen_batch(total_screens: usize) -> Vec<Application> {
    let instances = 8;
    let screens_per_microblock = 4;
    let microblocks = (total_screens / (instances * screens_per_microblock)).max(1);
    let mix = InstructionMix::new(40_000, 0.4, 0.1);
    let blocks: Vec<(usize, InstructionMix, u64, u64)> = (0..microblocks)
        .map(|_| (screens_per_microblock, mix, 4096u64, 512u64))
        .collect();
    let template = ApplicationBuilder::new("perf")
        .kernel(
            "perf-k0",
            DataSection {
                flash_base: 0,
                input_bytes: 4096 * microblocks as u64,
                output_bytes: 512 * microblocks as u64,
            },
            &blocks,
        )
        .build(AppId(0));
    instantiate_many(
        &[template],
        &InstancePlan {
            instances_per_app: instances,
            ..Default::default()
        },
    )
}

/// Rebuilds the ready list the way `ExecutionChain::ready_screens` used
/// to: a walk over every app × kernel × microblock × screen of the batch,
/// checking eligibility and state as it goes. O(S) per call, O(S²) per
/// schedule — the baseline the incremental frontier replaces.
pub fn naive_ready_screens(chain: &ExecutionChain, apps: &[Application]) -> Vec<ScreenRef> {
    let mut ready = Vec::new();
    for (ai, app) in apps.iter().enumerate() {
        for (ki, kernel) in app.kernels.iter().enumerate() {
            for (mi, mblock) in kernel.microblocks.iter().enumerate() {
                if !chain.microblock_eligible(ai, ki, mi) {
                    continue;
                }
                for si in 0..mblock.screens.len() {
                    let r = ScreenRef {
                        app: ai,
                        kernel: ki,
                        microblock: mi,
                        screen: si,
                    };
                    if matches!(chain.state(r), Some(ScreenState::Pending)) {
                        ready.push(r);
                    }
                }
            }
        }
    }
    ready
}

/// The head of [`naive_ready_screens`] without materializing the list —
/// still a full walk past every completed screen before the first pending
/// one, so a drain through it stays O(S²).
pub fn naive_ready_first(chain: &ExecutionChain, apps: &[Application]) -> Option<ScreenRef> {
    for (ai, app) in apps.iter().enumerate() {
        for (ki, kernel) in app.kernels.iter().enumerate() {
            for (mi, mblock) in kernel.microblocks.iter().enumerate() {
                if !chain.microblock_eligible(ai, ki, mi) {
                    continue;
                }
                for si in 0..mblock.screens.len() {
                    let r = ScreenRef {
                        app: ai,
                        kernel: ki,
                        microblock: mi,
                        screen: si,
                    };
                    if matches!(chain.state(r), Some(ScreenState::Pending)) {
                        return Some(r);
                    }
                }
            }
        }
    }
    None
}

/// The scan-based allocator shape the free-space subsystem replaces: every
/// allocation walks the used-flags table from the front until it finds a
/// free group. O(n) per pop, O(n²) per drain — the baseline the recorded
/// `BENCH_PR3.json` speedups are measured against.
pub struct NaiveScanAllocator {
    used: Vec<bool>,
}

impl NaiveScanAllocator {
    /// Creates an allocator with `total` free groups.
    pub fn new(total: u64) -> Self {
        NaiveScanAllocator {
            used: vec![false; total as usize],
        }
    }

    /// Scans for the first free group and takes it.
    pub fn allocate(&mut self) -> Option<u64> {
        let g = self.used.iter().position(|u| !u)?;
        self.used[g] = true;
        Some(g as u64)
    }

    /// Returns a group to the pool.
    pub fn recycle(&mut self, g: u64) {
        self.used[g as usize] = false;
    }
}

/// Rebuilds one GC pass's victim view the way `Storengine` used to: a
/// filter over *every* mapped group in the table, per pass — the full
/// rescan the reverse index replaces.
pub fn naive_victim_groups(v: &Flashvisor, group_low: u64, group_high: u64) -> Vec<(u64, u64)> {
    v.mapped_groups()
        .filter(|(_, pg)| *pg >= group_low && *pg < group_high)
        .collect()
}

/// A paper-prototype Flashvisor with the first `groups` logical groups
/// mapped — the mapping-table population a large campaign reaches. Shared
/// by `perfstat` and the microbenchmarks so both measure the same state.
pub fn populated_flashvisor(groups: u64) -> Flashvisor {
    let config = FlashAbacusConfig::paper_prototype(SchedulerPolicy::IntraO3);
    let groups = groups.min(config.total_page_groups());
    let mut v = Flashvisor::new(config);
    v.preload_range(0, groups * config.page_group_bytes)
        .expect("preload within capacity");
    v
}

/// A backbone with the PR4/PR5 data-path features a campaign pays for on
/// every command — per-owner QoS tag budgets and valid-page group
/// accounting — shared by `perfstat`'s per-command-cost section and the
/// `hot_path` microbenchmark so both price the same configuration.
pub fn hot_path_backbone() -> FlashBackbone {
    let geometry = FlashGeometry {
        channels: 4,
        packages_per_channel: 1,
        dies_per_package: 2,
        planes_per_die: 1,
        blocks_per_plane: 32,
        pages_per_block: 64,
        page_bytes: 4096,
    };
    let mut backbone = FlashBackbone::new(
        geometry,
        FlashTiming::fast_for_tests(),
        2.5e9,
        16,
        1_000_000,
    );
    backbone.set_qos_budgets(QosBudgets {
        per_owner: Some(8),
        background: Some(2),
    });
    backbone.enable_group_tracking(4);
    backbone
}

/// One full program → read → erase sweep of the device through
/// `submit_batch`, in 64-page stripes of consecutive flat pages (the write
/// path's page-group shape), with owner accounting and QoS admission live
/// on every command. Returns (commands submitted, simulated completion).
pub fn hot_path_sweep(backbone: &mut FlashBackbone, mut now: SimTime) -> (u64, SimTime) {
    let geometry = *backbone.geometry();
    let total_pages = geometry.total_pages();
    let mut commands = 0u64;
    for first in (0..total_pages).step_by(64) {
        let done = backbone
            .submit_batch(
                now,
                (first..first + 64).map(|flat| FlashCommand::program(geometry.flat_to_addr(flat))),
                OwnerId::Kernel(0),
            )
            .expect("hot-path program stripe");
        now = done.finished;
        commands += 64;
    }
    for first in (0..total_pages).step_by(64) {
        let done = backbone
            .submit_batch(
                now,
                (first..first + 64).map(|flat| FlashCommand::read(geometry.flat_to_addr(flat))),
                OwnerId::Kernel(0),
            )
            .expect("hot-path read stripe");
        now = done.finished;
        commands += 64;
    }
    for block in 0..geometry.total_blocks() {
        let (channel, die, block) = geometry.block_index_to_addr(block);
        let done = backbone
            .submit_batch(
                now,
                std::iter::once(FlashCommand::erase(fa_flash::PhysicalPageAddr::new(
                    channel, die, block, 0,
                ))),
                OwnerId::Gc,
            )
            .expect("hot-path erase");
        now = done.finished;
        commands += 1;
    }
    (commands, now)
}

/// Pages per group of the sharded-read sweep (the hot-path backbone's
/// group-tracking granularity).
pub const SHARDED_SWEEP_GROUP_PAGES: u64 = 4;

/// Groups per section of the sharded-read sweep — mirrors the ~hundred
/// groups a campaign section read stages per sharded submission.
pub const SHARDED_SWEEP_SECTION_GROUPS: u64 = 96;

/// The hot-path backbone with every page preloaded — the fully-programmed
/// steady state the section-read fast path requires.
pub fn preloaded_hot_path_backbone() -> FlashBackbone {
    let mut backbone = hot_path_backbone();
    let total = backbone.geometry().total_pages();
    backbone
        .preload_group(0, total)
        .expect("preload whole device");
    backbone
}

/// One full group-read sweep of a preloaded device, section by section
/// ([`SHARDED_SWEEP_SECTION_GROUPS`] groups of
/// [`SHARDED_SWEEP_GROUP_PAGES`] pages per submission): through the
/// sharded executor when `plan` is given, through the serial
/// `submit_group` loop otherwise. Both submit every group of a section at
/// the same instant, so the two paths are exactly equivalent — `perfstat`
/// asserts identical completions on every run before recording the
/// timing. Returns (commands, sections i.e. window syncs, completion).
pub fn group_read_sweep(
    backbone: &mut FlashBackbone,
    plan: Option<ShardPlan>,
    mut now: SimTime,
) -> (u64, u64, SimTime) {
    let pages = SHARDED_SWEEP_GROUP_PAGES;
    let total_groups = backbone.geometry().total_pages() / pages;
    let mut commands = 0u64;
    let mut sections = 0u64;
    let mut g = 0u64;
    let mut staged: Vec<(SimTime, u64)> = Vec::new();
    while g < total_groups {
        let n = SHARDED_SWEEP_SECTION_GROUPS.min(total_groups - g);
        match plan {
            Some(p) => {
                staged.clear();
                staged.extend((g..g + n).map(|gi| (now, gi * pages)));
                let batch = backbone.read_groups_sharded(p, &staged, pages, OwnerId::Kernel(0));
                now = batch.finished;
                commands += batch.commands;
            }
            None => {
                let mut finished = now;
                for gi in g..g + n {
                    let batch = backbone
                        .submit_group(
                            now,
                            gi * pages,
                            pages,
                            FlashOp::ReadPage,
                            OwnerId::Kernel(0),
                        )
                        .expect("sweep read stripe");
                    finished = finished.max(batch.finished);
                }
                now = finished;
                commands += n * pages;
            }
        }
        sections += 1;
        g += n;
    }
    (commands, sections, now)
}

/// One full group-program sweep of a freshly erased device, section by
/// section ([`SHARDED_SWEEP_SECTION_GROUPS`] groups of
/// [`SHARDED_SWEEP_GROUP_PAGES`] pages per submission): through the
/// sharded executor when `plan` is given (serial SRIO pre-pass, per-channel
/// program lanes under the finite program-sweep lookahead, barrier replay),
/// through the serial `submit_group` loop otherwise. Groups ascend, so
/// every program lands on its block's write cursor and the two paths are
/// exactly equivalent — `perfstat` asserts identical completions on every
/// run before recording the timing. Returns (commands, sections, completion).
pub fn group_program_sweep(
    backbone: &mut FlashBackbone,
    plan: Option<ShardPlan>,
    mut now: SimTime,
) -> (u64, u64, SimTime) {
    let pages = SHARDED_SWEEP_GROUP_PAGES;
    let total_groups = backbone.geometry().total_pages() / pages;
    let mut commands = 0u64;
    let mut sections = 0u64;
    let mut g = 0u64;
    let mut staged: Vec<(SimTime, u64)> = Vec::new();
    while g < total_groups {
        let n = SHARDED_SWEEP_SECTION_GROUPS.min(total_groups - g);
        match plan {
            Some(p) => {
                staged.clear();
                staged.extend((g..g + n).map(|gi| (now, gi * pages)));
                let batch = backbone.program_groups_sharded(p, &staged, pages, OwnerId::Kernel(0));
                now = batch.finished;
                commands += batch.commands;
            }
            None => {
                let mut finished = now;
                for gi in g..g + n {
                    let batch = backbone
                        .submit_group(
                            now,
                            gi * pages,
                            pages,
                            FlashOp::ProgramPage,
                            OwnerId::Kernel(0),
                        )
                        .expect("sweep program stripe");
                    finished = finished.max(batch.finished);
                }
                now = finished;
                commands += n * pages;
            }
        }
        sections += 1;
        g += n;
    }
    (commands, sections, now)
}

/// The same sweep submitted one command at a time through `submit_tagged`
/// — the pre-batching data path, kept as the baseline the batched
/// accounting is priced against in `BENCH_PR6.json`.
pub fn hot_path_sweep_tagged(backbone: &mut FlashBackbone, mut now: SimTime) -> (u64, SimTime) {
    let geometry = *backbone.geometry();
    let total_pages = geometry.total_pages();
    let mut commands = 0u64;
    for flat in 0..total_pages {
        let addr = geometry.flat_to_addr(flat);
        now = backbone
            .submit_tagged(now, FlashCommand::program(addr), OwnerId::Kernel(0))
            .expect("hot-path program")
            .finished;
        commands += 1;
    }
    for flat in 0..total_pages {
        let addr = geometry.flat_to_addr(flat);
        now = backbone
            .submit_tagged(now, FlashCommand::read(addr), OwnerId::Kernel(0))
            .expect("hot-path read")
            .finished;
        commands += 1;
    }
    for block in 0..geometry.total_blocks() {
        let (channel, die, block) = geometry.block_index_to_addr(block);
        let addr = fa_flash::PhysicalPageAddr::new(channel, die, block, 0);
        now = backbone
            .submit_tagged(now, FlashCommand::erase(addr), OwnerId::Gc)
            .expect("hot-path erase")
            .finished;
        commands += 1;
    }
    (commands, now)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_scan_allocator_hands_out_first_free() {
        let mut a = NaiveScanAllocator::new(3);
        assert_eq!(a.allocate(), Some(0));
        assert_eq!(a.allocate(), Some(1));
        a.recycle(0);
        assert_eq!(a.allocate(), Some(0));
        assert_eq!(a.allocate(), Some(2));
        assert_eq!(a.allocate(), None);
    }

    #[test]
    fn naive_victim_scan_agrees_with_the_reverse_index() {
        let v = populated_flashvisor(4096);
        for block in [0u64, 7, 63] {
            let (low, high) = v.config().gc_scan_group_range(block);
            assert_eq!(
                naive_victim_groups(&v, low, high),
                v.victim_groups(low, high)
            );
        }
    }

    #[test]
    fn batch_has_roughly_the_requested_screen_count() {
        let apps = screen_batch(1024);
        let chain = ExecutionChain::new(&apps);
        assert_eq!(chain.total_screens(), 1024);
        assert_eq!(apps.len(), 8);
    }

    #[test]
    fn batched_and_tagged_hot_path_sweeps_leave_identical_flash_state() {
        let mut batched = hot_path_backbone();
        let mut tagged = hot_path_backbone();
        let (cb, _) = hot_path_sweep(&mut batched, SimTime::ZERO);
        let (ct, _) = hot_path_sweep_tagged(&mut tagged, SimTime::ZERO);
        assert_eq!(cb, ct);
        assert_eq!(batched.total_valid_pages(), tagged.total_valid_pages());
        let b = batched.stats();
        let t = tagged.stats();
        assert_eq!(
            (b.reads, b.programs, b.erases),
            (t.reads, t.programs, t.erases)
        );
    }

    #[test]
    fn group_program_sweep_serial_and_sharded_agree() {
        let mut serial = hot_path_backbone();
        let (sc, ss, sf) = group_program_sweep(&mut serial, None, SimTime::ZERO);
        for shards in [1usize, 4] {
            let mut sharded = hot_path_backbone();
            let (hc, hs, hf) =
                group_program_sweep(&mut sharded, Some(ShardPlan::new(shards)), SimTime::ZERO);
            assert_eq!((sc, ss, sf), (hc, hs, hf), "{shards} shards");
            assert_eq!(serial.total_valid_pages(), sharded.total_valid_pages());
            assert_eq!(serial.stats().programs, sharded.stats().programs);
            // The finite program-sweep lookahead splits each section into
            // multiple conservative windows.
            assert!(sharded.sharded_windows() > hs);
        }
    }

    #[test]
    fn naive_walk_agrees_with_the_frontier() {
        let apps = screen_batch(128);
        let mut chain = ExecutionChain::new(&apps);
        let mut t = 0u64;
        loop {
            assert_eq!(naive_ready_screens(&chain, &apps), chain.ready_screens());
            assert_eq!(naive_ready_first(&chain, &apps), chain.first_ready());
            let Some(s) = chain.first_ready() else { break };
            chain.mark_running(s, 0);
            t += 10;
            chain.mark_done(s, fa_sim::time::SimTime::from_us(t));
        }
        assert!(chain.is_complete());
    }
}
