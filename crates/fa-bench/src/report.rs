//! Plain-text rendering of experiment results.
//!
//! Every experiment binary prints a fixed-width table (rows = workloads,
//! columns = systems or metrics) plus, where the paper uses one, a series
//! listing. The format is intentionally stable so `EXPERIMENTS.md` and CI
//! logs can diff runs.

use std::fmt::Write as _;

/// A simple fixed-width table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Missing cells render empty; extra cells are kept.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let columns = self
            .headers
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let mut header_line = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            let _ = write!(header_line, "{:<width$}  ", h, width = widths[i]);
        }
        let _ = writeln!(out, "{}", header_line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }
}

/// Formats a float with three significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a value normalized to a baseline (baseline = 1.0).
pub fn normalized(value: f64, baseline: f64) -> String {
    if baseline <= 0.0 {
        "n/a".to_string()
    } else {
        format!("{:.2}", value / baseline)
    }
}

/// Formats a percentage.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Renders a `(time, value)` series as `t=..s v=..` lines, downsampled to at
/// most `max_points` points.
pub fn render_series(title: &str, points: &[(f64, f64)], max_points: usize) -> String {
    let mut out = format!("-- {title} --\n");
    if points.is_empty() {
        out.push_str("(empty)\n");
        return out;
    }
    let stride = (points.len() / max_points.max(1)).max(1);
    for (i, (t, v)) in points.iter().enumerate() {
        if i % stride == 0 || i == points.len() - 1 {
            let _ = writeln!(out, "t={t:.6}s  v={v:.3}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["short".into(), "1.0".into()]);
        t.row(vec!["a-much-longer-name".into(), "2.0".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("a-much-longer-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Header separator is as wide as the header line.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[2].chars().all(|c| c == '-'));
    }

    #[test]
    fn numeric_formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(12.34), "12.3");
        assert_eq!(normalized(2.0, 4.0), "0.50");
        assert_eq!(normalized(1.0, 0.0), "n/a");
        assert_eq!(pct(0.5), "50.0%");
    }

    #[test]
    fn series_rendering_downsamples() {
        let points: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64 * 2.0)).collect();
        let s = render_series("series", &points, 10);
        let lines = s.lines().count();
        assert!(lines <= 13, "rendered {lines} lines");
        assert!(s.contains("t=99.000000s"));
        assert_eq!(render_series("empty", &[], 10).lines().count(), 2);
    }
}
