//! Criterion benchmarks of the four scheduling policies on a small mixed
//! workload (scheduler decision cost plus full-system run time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_kernel::instance::{instantiate_many, InstancePlan};
use fa_workloads::synthetic::{synthetic_app, SyntheticSpec};
use flashabacus::config::FlashAbacusConfig;
use flashabacus::scheduler::SchedulerPolicy;
use flashabacus::system::FlashAbacusSystem;

fn small_batch() -> Vec<fa_kernel::model::Application> {
    let template = synthetic_app(
        "bench",
        &SyntheticSpec {
            instructions: 500_000,
            serial_fraction: 0.3,
            input_bytes: 256 * 1024,
            output_bytes: 32 * 1024,
            ldst_ratio: 0.4,
            mul_ratio: 0.1,
            parallel_screens: 6,
        },
    );
    instantiate_many(
        &[template],
        &InstancePlan {
            instances_per_app: 6,
            ..Default::default()
        },
    )
}

fn bench_policies(c: &mut Criterion) {
    let apps = small_batch();
    let mut group = c.benchmark_group("scheduler/full_run_6_instances");
    for policy in SchedulerPolicy::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &policy,
            |b, p| {
                b.iter(|| {
                    let mut system = FlashAbacusSystem::new(FlashAbacusConfig::tiny_for_tests(*p));
                    criterion::black_box(system.run(&apps).unwrap());
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
