//! Criterion benchmark of the data-path hot loop: per-command cost of
//! `submit_batch` with the full campaign feature set live — per-owner QoS
//! tag admission, dense owner accounting, and valid-page group tracking.
//! The per-command `submit_tagged` sweep rides along as the baseline the
//! batched accounting is priced against, and the group-read sweep compares
//! the serial section loop against the channel-sharded dispatcher (1 shard
//! and 4 shards); the group-program sweep does the same for the write path
//! (serial SRIO pre-pass + per-channel program lanes under the finite
//! lookahead); `perfstat` records the same numbers into `BENCH_PR10.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fa_bench::perf::{
    group_program_sweep, group_read_sweep, hot_path_backbone, hot_path_sweep,
    hot_path_sweep_tagged, preloaded_hot_path_backbone,
};
use fa_sim::sharded::ShardPlan;
use fa_sim::time::SimTime;

fn bench_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path");
    // One sweep programs, reads, and erases the whole device; report
    // per-sweep time so the two paths are directly comparable.
    group.bench_function("submit_batch/device_sweep", |b| {
        b.iter_batched(
            hot_path_backbone,
            |mut backbone| criterion::black_box(hot_path_sweep(&mut backbone, SimTime::ZERO)),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("submit_tagged/device_sweep", |b| {
        b.iter_batched(
            hot_path_backbone,
            |mut backbone| {
                criterion::black_box(hot_path_sweep_tagged(&mut backbone, SimTime::ZERO))
            },
            BatchSize::LargeInput,
        )
    });
    // Section reads over a preloaded device: the serial per-group loop vs
    // the channel-sharded executor. The 1-shard case prices the pure
    // engine/window overhead (same physics, event-driven dispatch); the
    // 4-shard case adds outbox merging across lanes.
    for (label, plan) in [
        ("serial_loop", None),
        ("sharded_1", Some(ShardPlan::new(1))),
        ("sharded_4", Some(ShardPlan::new(4))),
    ] {
        group.bench_function(format!("group_read_sweep/{label}"), |b| {
            b.iter_batched(
                preloaded_hot_path_backbone,
                |mut backbone| {
                    criterion::black_box(group_read_sweep(&mut backbone, plan, SimTime::ZERO))
                },
                BatchSize::LargeInput,
            )
        });
    }
    // Section programs over a freshly erased device: the serial per-group
    // loop vs the sharded program lanes (multi-window under the finite
    // program-sweep lookahead). The paths must stay physics-identical, so
    // assert equal completions once before timing anything.
    let baseline = {
        let mut backbone = hot_path_backbone();
        group_program_sweep(&mut backbone, None, SimTime::ZERO)
    };
    for (label, plan) in [
        ("serial_loop", None),
        ("sharded_1", Some(ShardPlan::new(1))),
        ("sharded_4", Some(ShardPlan::new(4))),
    ] {
        if let Some(p) = plan {
            let mut backbone = hot_path_backbone();
            assert_eq!(
                group_program_sweep(&mut backbone, Some(p), SimTime::ZERO),
                baseline,
                "sharded program sweep diverged from the serial loop"
            );
        }
        group.bench_function(format!("group_program_sweep/{label}"), |b| {
            b.iter_batched(
                hot_path_backbone,
                |mut backbone| {
                    criterion::black_box(group_program_sweep(&mut backbone, plan, SimTime::ZERO))
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
