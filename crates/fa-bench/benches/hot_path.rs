//! Criterion benchmark of the data-path hot loop: per-command cost of
//! `submit_batch` with the full campaign feature set live — per-owner QoS
//! tag admission, dense owner accounting, and valid-page group tracking.
//! The per-command `submit_tagged` sweep rides along as the baseline the
//! batched accounting is priced against; `perfstat` records the same two
//! numbers into `BENCH_PR6.json`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fa_bench::perf::{hot_path_backbone, hot_path_sweep, hot_path_sweep_tagged};
use fa_sim::time::SimTime;

fn bench_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path");
    // One sweep programs, reads, and erases the whole device; report
    // per-sweep time so the two paths are directly comparable.
    group.bench_function("submit_batch/device_sweep", |b| {
        b.iter_batched(
            hot_path_backbone,
            |mut backbone| criterion::black_box(hot_path_sweep(&mut backbone, SimTime::ZERO)),
            BatchSize::LargeInput,
        )
    });
    group.bench_function("submit_tagged/device_sweep", |b| {
        b.iter_batched(
            hot_path_backbone,
            |mut backbone| {
                criterion::black_box(hot_path_sweep_tagged(&mut backbone, SimTime::ZERO))
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
