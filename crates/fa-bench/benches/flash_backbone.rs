//! Criterion benchmarks of the flash backbone: sequential and
//! channel-parallel page traffic through the FPGA controllers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fa_flash::{FlashBackbone, FlashCommand, FlashGeometry, FlashTiming};
use fa_sim::time::SimTime;

fn backbone() -> FlashBackbone {
    FlashBackbone::new(
        FlashGeometry::tiny_for_tests(),
        FlashTiming::fast_for_tests(),
        2.5e9,
        16,
        10_000,
    )
}

fn bench_programs_and_reads(c: &mut Criterion) {
    c.bench_function("backbone/program_then_read_64_pages", |b| {
        b.iter_batched(
            backbone,
            |mut bb| {
                let geometry = *bb.geometry();
                let mut t = SimTime::ZERO;
                for flat in 0..64u64 {
                    let addr = geometry.flat_to_addr(flat);
                    t = bb.submit(t, FlashCommand::program(addr)).unwrap().finished;
                }
                for flat in 0..64u64 {
                    let addr = geometry.flat_to_addr(flat);
                    t = bb.submit(t, FlashCommand::read(addr)).unwrap().finished;
                }
                criterion::black_box(t)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_programs_and_reads);
criterion_main!(benches);
