//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! page-group size, channel tag-queue depth, and buffered output writes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fa_kernel::instance::{instantiate_many, InstancePlan};
use fa_workloads::synthetic::{synthetic_app, SyntheticSpec};
use flashabacus::config::FlashAbacusConfig;
use flashabacus::scheduler::SchedulerPolicy;
use flashabacus::system::FlashAbacusSystem;

fn batch() -> Vec<fa_kernel::model::Application> {
    let template = synthetic_app(
        "ablate",
        &SyntheticSpec {
            instructions: 300_000,
            serial_fraction: 0.2,
            input_bytes: 512 * 1024,
            output_bytes: 64 * 1024,
            ldst_ratio: 0.4,
            mul_ratio: 0.1,
            parallel_screens: 6,
        },
    );
    instantiate_many(
        &[template],
        &InstancePlan {
            instances_per_app: 4,
            ..Default::default()
        },
    )
}

fn run_with(config: FlashAbacusConfig, apps: &[fa_kernel::model::Application]) -> f64 {
    let mut system = FlashAbacusSystem::new(config);
    system.run(apps).unwrap().finished_at.as_secs_f64()
}

fn ablation_pagegroup(c: &mut Criterion) {
    let apps = batch();
    let mut group = c.benchmark_group("ablation/page_group_bytes");
    for kb in [16u64, 64, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kb}KiB")),
            &kb,
            |b, kb| {
                let mut config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
                config.page_group_bytes = kb * 1024;
                b.iter(|| criterion::black_box(run_with(config, &apps)))
            },
        );
    }
    group.finish();
}

fn ablation_tag_queue(c: &mut Criterion) {
    let apps = batch();
    let mut group = c.benchmark_group("ablation/channel_tag_queue");
    for depth in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, depth| {
            let mut config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
            config.channel_tag_queue = *depth;
            b.iter(|| criterion::black_box(run_with(config, &apps)))
        });
    }
    group.finish();
}

fn ablation_buffered_writes(c: &mut Criterion) {
    let apps = batch();
    let mut group = c.benchmark_group("ablation/buffered_writes");
    for buffered in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(buffered),
            &buffered,
            |b, buffered| {
                let mut config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
                config.buffered_writes = *buffered;
                b.iter(|| criterion::black_box(run_with(config, &apps)))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_pagegroup,
    ablation_tag_queue,
    ablation_buffered_writes
);
criterion_main!(benches);
