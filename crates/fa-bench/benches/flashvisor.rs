//! Criterion micro-benchmarks of the Flashvisor critical path: address
//! translation for page-group reads/writes and range-lock operations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fa_platform::mem::Scratchpad;
use fa_platform::PlatformSpec;
use fa_sim::time::SimTime;
use flashabacus::config::FlashAbacusConfig;
use flashabacus::rangelock::{LockMode, RangeLockTable};
use flashabacus::scheduler::SchedulerPolicy;
use flashabacus::Flashvisor;

fn bench_read_translation(c: &mut Criterion) {
    c.bench_function("flashvisor/read_section_1MiB", |b| {
        b.iter_batched(
            || {
                let mut v =
                    Flashvisor::new(FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3));
                v.preload_range(0, 1 << 20).unwrap();
                (v, Scratchpad::new(&PlatformSpec::paper_prototype()))
            },
            |(mut v, mut sp)| {
                v.read_section(SimTime::ZERO, 0, 1 << 20, &mut sp).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_write_allocation(c: &mut Criterion) {
    c.bench_function("flashvisor/write_section_1MiB", |b| {
        b.iter_batched(
            || {
                (
                    Flashvisor::new(FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3)),
                    Scratchpad::new(&PlatformSpec::paper_prototype()),
                )
            },
            |(mut v, mut sp)| {
                v.write_section(SimTime::ZERO, 0, 1 << 20, &mut sp).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_range_locks(c: &mut Criterion) {
    c.bench_function("rangelock/acquire_release_1000_disjoint", |b| {
        b.iter(|| {
            let mut table = RangeLockTable::new();
            let mut ids = Vec::with_capacity(1000);
            for i in 0..1000u64 {
                ids.push(
                    table
                        .try_acquire(i * 4096, (i + 1) * 4096, LockMode::Read, i as u32)
                        .expect("disjoint ranges always succeed"),
                );
            }
            for id in ids {
                table.release(id);
            }
        })
    });
    c.bench_function("rangelock/conflict_scan_under_contention", |b| {
        let mut table = RangeLockTable::new();
        for i in 0..512u64 {
            table
                .try_acquire(i * 8192, i * 8192 + 4096, LockMode::Read, i as u32)
                .unwrap();
        }
        b.iter(|| {
            // A writer probing the middle of a busy table.
            criterion::black_box(table.find_conflict(2_000_000, 2_004_096, LockMode::Write))
        })
    });
}

criterion_group!(
    benches,
    bench_read_translation,
    bench_write_allocation,
    bench_range_locks
);
criterion_main!(benches);
