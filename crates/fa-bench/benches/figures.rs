//! Criterion benchmarks of representative figure regenerations at a coarse
//! data scale (these exercise the full five-system comparison end to end).

use criterion::{criterion_group, criterion_main, Criterion};
use fa_bench::runner::{homogeneous_workload, run_on, ExperimentScale, SystemKind};
use fa_workloads::polybench::PolyBench;
use flashabacus::SchedulerPolicy;

fn bench_representative_runs(c: &mut Criterion) {
    let scale = ExperimentScale { data_scale: 512 };
    let atax = homogeneous_workload(PolyBench::Atax, scale);
    let gemm = homogeneous_workload(PolyBench::Gemm, scale);

    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig10a/ATAX/SIMD", |b| {
        b.iter(|| criterion::black_box(run_on(SystemKind::Simd, "ATAX", &atax)))
    });
    group.bench_function("fig10a/ATAX/IntraO3", |b| {
        b.iter(|| {
            criterion::black_box(run_on(
                SystemKind::FlashAbacus(SchedulerPolicy::IntraO3),
                "ATAX",
                &atax,
            ))
        })
    });
    group.bench_function("fig10a/GEMM/InterDy", |b| {
        b.iter(|| {
            criterion::black_box(run_on(
                SystemKind::FlashAbacus(SchedulerPolicy::InterDy),
                "GEMM",
                &gemm,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_representative_runs);
criterion_main!(benches);
