//! Dispatch-loop throughput of the incrementally maintained ready frontier
//! versus a naive full-batch rescan, at small / medium / large screen
//! counts.
//!
//! The frontier drain does O(S) total work for a batch of S screens; the
//! rescan drain recomputes the whole ready list per dispatch — O(S²) — which
//! is what `ExecutionChain::ready_screens`-based scheduling used to cost.
//! The gap between the two rows at `large` is the tentpole win recorded in
//! `BENCH_PR2.json`. Batch shape and baseline walk are shared with the
//! `perfstat` binary through `fa_bench::perf`, so both always measure the
//! same thing.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use fa_bench::perf::{naive_ready_screens, screen_batch};
use fa_kernel::chain::ExecutionChain;
use fa_kernel::model::Application;
use fa_sim::time::SimTime;

/// Drains the chain taking the first ready screen off the incremental
/// frontier each step — the new per-dispatch path.
fn drain_frontier(mut chain: ExecutionChain) -> usize {
    let mut dispatched = 0;
    let mut t = 0u64;
    while let Some(s) = chain.first_ready() {
        chain.mark_running(s, 0);
        t += 10;
        chain.mark_done(s, SimTime::from_us(t));
        dispatched += 1;
    }
    assert!(chain.is_complete());
    dispatched
}

/// Drains the chain rebuilding the full ready list per dispatch — the old
/// O(S²) behaviour, kept as the comparison baseline.
fn drain_rescan(mut chain: ExecutionChain, apps: &[Application]) -> usize {
    let mut dispatched = 0;
    let mut t = 0u64;
    loop {
        let ready = naive_ready_screens(&chain, apps);
        let Some(&s) = ready.first() else { break };
        chain.mark_running(s, 0);
        t += 10;
        chain.mark_done(s, SimTime::from_us(t));
        dispatched += 1;
    }
    assert!(chain.is_complete());
    dispatched
}

fn bench_dispatch_loop(c: &mut Criterion) {
    let sizes = [("small", 128usize), ("medium", 1024), ("large", 8192)];
    let mut group = c.benchmark_group("frontier/dispatch_drain");
    for (label, total) in sizes {
        let apps = screen_batch(total);
        let chain = ExecutionChain::new(&apps);
        let screens = chain.total_screens();
        group.bench_with_input(
            BenchmarkId::new("incremental", format!("{label}_{screens}")),
            &chain,
            |b, chain| b.iter_batched(|| chain.clone(), drain_frontier, BatchSize::LargeInput),
        );
        let input = (chain, apps);
        group.bench_with_input(
            BenchmarkId::new("full_rescan", format!("{label}_{screens}")),
            &input,
            |b, (chain, apps)| {
                b.iter_batched(
                    || chain.clone(),
                    |c| drain_rescan(c, apps),
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch_loop);
criterion_main!(benches);
