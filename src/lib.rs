//! Umbrella crate for the FlashAbacus reproduction workspace.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); it simply re-exports the
//! member crates so examples can use one coherent namespace.
//!
//! The interesting code lives in the members:
//!
//! * [`flashabacus`] — the paper's contribution (Flashvisor, Storengine,
//!   the four multi-kernel schedulers, and the full-device simulation).
//! * [`fa_baseline`] — the conventional accelerator + discrete-SSD system
//!   the paper compares against.
//! * [`fa_flash`], [`fa_platform`], [`fa_kernel`], [`fa_energy`],
//!   [`fa_sim`] — the simulated substrates.
//! * [`fa_workloads`] — the PolyBench, mix, and graph/big-data workloads.

pub use fa_baseline;
pub use fa_energy;
pub use fa_flash;
pub use fa_kernel;
pub use fa_platform;
pub use fa_sim;
pub use fa_workloads;
pub use flashabacus;

/// Convenience re-exports used by the examples.
pub mod prelude {
    pub use fa_baseline::{BaselineConfig, ConventionalSystem};
    pub use fa_kernel::instance::{instantiate_many, InstancePlan};
    pub use fa_kernel::model::{AppId, Application, ApplicationBuilder, DataSection};
    pub use fa_platform::lwp::InstructionMix;
    pub use fa_workloads::bigdata::{bigdata_app, BigDataBench};
    pub use fa_workloads::polybench::{polybench_app, PolyBench};
    pub use fa_workloads::synthetic::{synthetic_app, SyntheticSpec};
    pub use flashabacus::{FlashAbacusConfig, FlashAbacusSystem, RunOutcome, SchedulerPolicy};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_the_main_entry_points() {
        use crate::prelude::*;
        // Types are nameable and constructible.
        let _ = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
        let _ = BaselineConfig::tiny_for_tests();
        let _ = InstancePlan::homogeneous();
    }
}
