//! Property test: the incremental free-space, valid-page, wear, and
//! hot/cold accounting always equals brute-force recounts from the
//! backbone, under arbitrary write / overwrite / journal / GC
//! interleavings, for every placement × GC-victim policy combination (with
//! and without hot/cold separation).
//!
//! The oracle recomputes everything from primary state — the mapping
//! table, die page states, die erase counters — so a divergence pinpoints
//! a bug in the incremental bookkeeping (free list, reverse index,
//! valid-page buckets, occupancy gauges, row-wear ledger, overwrite
//! counts) rather than in the oracle. Failed operations (flash exhaustion,
//! NAND programming-rule violations on recycled-but-unerased groups) are
//! tolerated: the invariants must hold *especially* after an op is
//! rejected partway through.
//!
//! Case count defaults to 256 and can be raised via `FA_ORACLE_CASES`
//! (CI runs the release suite with more).

use flashabacus_suite::fa_flash::{
    FaultPlan, FlashBackbone, FlashCommand, FlashGeometry, FlashTiming, OwnerId, PageState,
    PhysicalPageAddr, QosBudgets,
};
use flashabacus_suite::fa_platform::mem::Scratchpad;
use flashabacus_suite::fa_platform::PlatformSpec;
use flashabacus_suite::fa_sim::time::{SimDuration, SimTime};
use flashabacus_suite::flashabacus::config::{FlashAbacusConfig, GovernorConfig};
use flashabacus_suite::flashabacus::freespace::PlacementPolicy;
use flashabacus_suite::flashabacus::openloop::QosGovernor;
use flashabacus_suite::flashabacus::rangelock::LockMode;
use flashabacus_suite::flashabacus::scheduler::SchedulerPolicy;
use flashabacus_suite::flashabacus::storengine::{GcVictimPolicy, Storengine};
use flashabacus_suite::flashabacus::Flashvisor;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A deliberately small device (2 channels × 8 blocks × 16 pages, 2-page
/// groups → 128 groups) so overwrites, GC, and exhaustion all happen
/// within a short random walk.
fn oracle_config(
    placement: PlacementPolicy,
    gc_victim: GcVictimPolicy,
    hot_threshold: Option<u32>,
) -> FlashAbacusConfig {
    let mut config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
    config.flash_geometry = FlashGeometry {
        channels: 2,
        packages_per_channel: 1,
        dies_per_package: 1,
        planes_per_die: 1,
        blocks_per_plane: 8,
        pages_per_block: 16,
        page_bytes: 4096,
    };
    config.flash_timing = FlashTiming::fast_for_tests();
    config.page_group_bytes = 8 * 1024;
    config.endurance_cycles = 100_000;
    config.journal_interval = SimDuration::from_ms(1);
    config.placement = placement;
    config.gc_victim = gc_victim;
    config.hot_overwrite_threshold = hot_threshold;
    config
}

/// Checks every incremental structure against a from-scratch recount.
/// `shadow_overwrites` is the test harness's independently maintained
/// per-logical-group overwrite ledger (the brute-force side of the
/// hot/cold classification check).
fn check_invariants(v: &Flashvisor, shadow_overwrites: &[u32]) -> Result<(), String> {
    let config = *v.config();
    let geometry = config.flash_geometry;
    let total_groups = config.total_page_groups();

    // 1. Mapping injectivity: two logical groups never share a physical
    //    group, and every physical group is in range.
    let mut mapped: BTreeSet<u64> = BTreeSet::new();
    for (lg, pg) in v.mapped_groups() {
        prop_assert!(pg < total_groups, "pg {pg} out of range (lg {lg})");
        prop_assert!(mapped.insert(pg), "physical group {pg} mapped twice");
    }

    // 2. Reverse-index consistency: forward and reverse agree exactly.
    for (lg, pg) in v.mapped_groups() {
        prop_assert_eq!(v.logical_group_mapped_to(pg), Some(lg));
    }
    for pg in 0..total_groups {
        if !mapped.contains(&pg) {
            prop_assert_eq!(v.logical_group_mapped_to(pg), None);
        }
    }

    // 3. Free-pool soundness: the free set is duplicate-free, sized like
    //    the O(1) counter says, and disjoint from every mapped group, every
    //    reserved group, and the hot reserve.
    let free = v.freespace().debug_free_groups();
    prop_assert_eq!(free.len() as u64, v.free_physical_groups());
    let free_set: BTreeSet<u64> = free.iter().copied().collect();
    prop_assert_eq!(free_set.len(), free.len());
    prop_assert!(
        free_set.is_disjoint(&mapped),
        "free pool intersects mapped groups"
    );
    let hot_reserve: BTreeSet<u64> = v.hot_reserved_groups().into_iter().collect();
    prop_assert_eq!(hot_reserve.len(), v.hot_reserved_groups().len());
    prop_assert!(
        free_set.is_disjoint(&hot_reserve),
        "free pool intersects the hot reserve"
    );
    prop_assert!(
        hot_reserve.is_disjoint(&mapped),
        "hot reserve intersects mapped groups"
    );
    for &g in free_set.iter().chain(hot_reserve.iter()) {
        prop_assert!(
            !v.freespace().is_reserved(g),
            "reserved group {g} escaped into the pool or hot reserve"
        );
    }

    // 4. Journal-row fencing: the reserved metadata row is permanently
    //    outside every data path — never free, never mapped.
    let journal_row = config
        .journal_metadata_row()
        .expect("oracle device has >1 row");
    let (jlow, jhigh) = config.block_row_group_range(journal_row);
    for g in jlow..jhigh.min(total_groups) {
        prop_assert!(v.freespace().is_reserved(g), "journal group {g} unreserved");
        prop_assert!(!free_set.contains(&g), "journal group {g} in the pool");
        prop_assert!(!mapped.contains(&g), "journal group {g} mapped to data");
    }

    // 5. Valid-page index vs brute-force recount from die page states, at
    //    every layer: per block, per channel, and backbone-wide.
    let index = v.backbone().valid_index();
    for b in 0..geometry.total_blocks() {
        let (ch, die, block) = geometry.block_index_to_addr(b);
        let die_ref = v.backbone().channel(ch).unwrap().die(die).unwrap();
        let recount = die_ref.recount_valid_pages_in(block);
        prop_assert_eq!(index.valid_in(b) as usize, recount);
        prop_assert_eq!(die_ref.valid_pages_in(block), recount);
    }
    for ch in 0..geometry.channels {
        let c = v.backbone().channel(ch).unwrap();
        prop_assert_eq!(c.total_valid_pages(), c.recount_valid_pages());
    }
    prop_assert_eq!(
        v.backbone().total_valid_pages(),
        v.backbone().recount_valid_pages()
    );

    // 6. Greedy victim pick matches the brute-force argmin over blocks
    //    with at least one invalid page: fewest valid, smallest index.
    //    Retired (bad) blocks are permanently outside victim selection.
    let mut expected: Option<(u32, u64)> = None;
    for b in 0..geometry.total_blocks() {
        if index.is_block_retired(b) {
            continue;
        }
        let (ch, die, block) = geometry.block_index_to_addr(b);
        let die_ref = v.backbone().channel(ch).unwrap().die(die).unwrap();
        let mut valid = 0u32;
        let mut invalid = 0u32;
        for p in 0..geometry.pages_per_block {
            match die_ref.page_state(block, p) {
                Some(PageState::Valid) => valid += 1,
                Some(PageState::Invalid) => invalid += 1,
                _ => {}
            }
        }
        if invalid > 0 && expected.map_or(true, |(ev, _)| valid < ev) {
            expected = Some((valid, b));
        }
    }
    prop_assert_eq!(
        v.backbone().min_valid_garbage_block(),
        expected.map(|(_, b)| b)
    );

    // 7. Wear ledger vs brute-force recount from the die erase counters:
    //    the valid-page index's per-block counts mirror the dies exactly,
    //    and the free-space manager's per-row ledger (drained lazily
    //    through Flashvisor) sums them row by row. Lazy drains are flushed
    //    by every journal/GC reclaim, so at op boundaries the ledgers
    //    agree.
    let blocks_per_die = geometry.blocks_per_die() as u64;
    let mut row_recount = vec![0u64; blocks_per_die as usize];
    for b in 0..geometry.total_blocks() {
        let (ch, die, block) = geometry.block_index_to_addr(b);
        let die_ref = v.backbone().channel(ch).unwrap().die(die).unwrap();
        let die_count = die_ref.erase_count(block);
        prop_assert_eq!(index.block_erase_count(b), die_count);
        row_recount[(b % blocks_per_die) as usize] += die_count;
    }
    prop_assert_eq!(v.freespace().row_wear(), row_recount.as_slice());

    // 8. Occupancy gauges: occupied + free + reserved + retired partitions
    //    the device, with occupancy classified exactly like the free
    //    pool's complement (the hot reserve counts as allocated — those
    //    groups left the pool; retired groups left everything).
    let occupancy = v.placement_occupancy();
    let occupied: u64 = occupancy.iter().sum();
    let reserved = v.freespace().reserved_count();
    let retired = v.freespace().retired_count();
    prop_assert_eq!(
        occupied + v.free_physical_groups() + reserved + retired,
        total_groups
    );
    let mut per_class = vec![0u64; v.freespace().class_count()];
    for g in 0..total_groups {
        if !free_set.contains(&g) && !v.freespace().is_reserved(g) && !v.freespace().is_retired(g) {
            per_class[v.freespace().stripe_class(g)] += 1;
        }
    }
    prop_assert_eq!(occupancy, per_class.as_slice());

    // 9. Group tracking vs brute force, and the no-leak invariant: recount
    //    every group's programmed/valid pages from the die page states.
    //    A *leaked* group would be simultaneously unmapped, absent from
    //    the free pool, unreserved, outside the hot reserve, and fully
    //    erased — space no path can ever reach again. The group-reclaim
    //    completeness fix guarantees erases return such groups to the
    //    allocator, so the combination must never exist.
    let pages_per_group = config.pages_per_group();
    let index = v.backbone().valid_index();
    for g in 0..total_groups {
        let mut programmed = 0u32;
        let mut valid = 0u32;
        for i in 0..pages_per_group {
            let flat = g * pages_per_group + i;
            if flat >= geometry.total_pages() {
                continue;
            }
            let addr = geometry.flat_to_addr(flat);
            let die_ref = v
                .backbone()
                .channel(addr.channel)
                .unwrap()
                .die(addr.die)
                .unwrap();
            match die_ref.page_state(addr.block, addr.page) {
                Some(PageState::Valid) => {
                    programmed += 1;
                    valid += 1;
                }
                Some(PageState::Invalid) => programmed += 1,
                _ => {}
            }
        }
        prop_assert_eq!(index.group_programmed_pages(g), programmed);
        prop_assert_eq!(index.group_valid_pages(g), valid);
        let unmapped = !mapped.contains(&g);
        let leaked = unmapped
            && !free_set.contains(&g)
            && !v.freespace().is_reserved(g)
            && !v.freespace().is_retired(g)
            && !hot_reserve.contains(&g)
            && programmed == 0;
        prop_assert!(
            !leaked,
            "group {} leaked: unmapped, not free, not reserved, fully erased",
            g
        );
    }

    // 10. Hot/cold classification vs the shadow overwrite ledger: the
    //     harness counts every overwrite it performed independently, and
    //     Flashvisor's incremental counts (and therefore the hot/cold
    //     split) must agree, group by group.
    for lg in 0..total_groups {
        prop_assert_eq!(v.overwrite_count(lg), shadow_overwrites[lg as usize]);
        let expect_hot = match config.hot_overwrite_threshold {
            Some(t) => shadow_overwrites[lg as usize] >= t,
            None => false,
        };
        prop_assert_eq!(v.is_hot_group(lg), expect_hot);
    }
    let fv = v.stats();
    prop_assert_eq!(
        fv.overwritten_groups,
        shadow_overwrites.iter().map(|&c| c as u64).sum::<u64>()
    );
    prop_assert!(fv.hot_steered_writes <= fv.hot_group_writes);

    // 11. Per-owner attribution is complete: summing the owner-tagged
    //     command counts and payload bytes reproduces the untagged backbone
    //     totals exactly.
    let owner_stats = v.backbone().owner_stats();
    let totals = v.backbone().stats();
    prop_assert_eq!(
        owner_stats.values().map(|o| o.reads).sum::<u64>(),
        totals.reads
    );
    prop_assert_eq!(
        owner_stats.values().map(|o| o.programs).sum::<u64>(),
        totals.programs
    );
    prop_assert_eq!(
        owner_stats.values().map(|o| o.erases).sum::<u64>(),
        totals.erases
    );
    prop_assert_eq!(
        owner_stats.values().map(|o| o.bytes).sum::<u64>(),
        totals.srio_bytes
    );
    Ok(())
}

/// Deterministic splitmix64 step driving the random walk from a seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn oracle_cases() -> u32 {
    std::env::var("FA_ORACLE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v > 0)
        .unwrap_or(256)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(oracle_cases()))]

    /// Random write/overwrite/journal/GC interleavings never desynchronize
    /// the incremental metadata from the brute-force recounts, for any
    /// placement × victim-policy × hot/cold combination.
    #[test]
    fn incremental_metadata_always_equals_brute_force_recounts(
        placement_pick in 0usize..3,
        gc_pick in 0usize..3,
        hot_pick in 0u32..4,
        steps in 24usize..56,
        seed in 0u64..u64::MAX,
    ) {
        let placement = PlacementPolicy::all()[placement_pick];
        let gc_victim = GcVictimPolicy::all()[gc_pick];
        // 0 disables hot/cold separation; 1..=3 are thresholds.
        let hot_threshold = (hot_pick > 0).then_some(hot_pick);
        let config = oracle_config(placement, gc_victim, hot_threshold);
        let mut v = Flashvisor::new(config);
        let mut s = Storengine::new(config);
        let mut sp = Scratchpad::new(&PlatformSpec::paper_prototype());
        let mut rng = seed;
        let mut t_us = 1u64;
        let mut successes = 0usize;
        // The brute-force side of the hot/cold check: the walk's own
        // overwrite ledger, kept without reading Flashvisor's counters on
        // the success path. A write that fails partway commits an
        // unknowable prefix, so only then the ledger resyncs from the
        // device.
        let total_groups = config.total_page_groups();
        let mut shadow = vec![0u32; total_groups as usize];

        check_invariants(&v, &shadow)?;
        for _ in 0..steps {
            t_us += 37;
            let now = SimTime::from_us(t_us);
            let group_bytes = config.page_group_bytes;
            match splitmix64(&mut rng) % 8 {
                // Writes dominate: confined to a 24-group logical window so
                // overwrites (and therefore garbage) are common.
                0..=4 => {
                    let lg = splitmix64(&mut rng) % 24;
                    let groups = 1 + splitmix64(&mut rng) % 4;
                    let mapped_before: Vec<u64> = (lg..lg + groups)
                        .filter(|g| v.physical_group_of(*g).is_some())
                        .collect();
                    if v.write_section(now, lg * group_bytes, groups * group_bytes, &mut sp).is_ok() {
                        successes += 1;
                        for g in mapped_before {
                            shadow[g as usize] += 1;
                        }
                    } else {
                        // The failed op overwrote an unknowable prefix of
                        // the range; adopt the device's counts for exactly
                        // the groups the op touched.
                        for g in lg..lg + groups {
                            shadow[g as usize] = v.overwrite_count(g);
                        }
                    }
                }
                // Occasional journaling (programs metadata pages).
                5 => {
                    let _ = s.journal(now, &mut v);
                }
                // GC passes, sometimes several back to back.
                _ => {
                    let passes = 1 + splitmix64(&mut rng) % 3;
                    for _ in 0..passes {
                        let _ = s.collect_garbage(now, &mut v);
                    }
                }
            }
            check_invariants(&v, &shadow)?;
        }
        // The walk starts on an empty device, so the early writes always
        // land: a silent all-failure walk would test nothing.
        prop_assert!(successes > 0, "no operation ever succeeded");
    }

    /// The same random walk with an injected fault plan armed: seeded
    /// probabilistic program/erase failures, remap-on-failure retries
    /// inside `write_section`, and bad-block row retirement must never
    /// desynchronize the incremental metadata either. Failed GC passes are
    /// absorbed the way the system driver absorbs them — retirement
    /// processing runs and the walk continues — and every invariant
    /// (including the new occupied + free + reserved + retired partition
    /// and the no-leak check) holds after every op.
    #[test]
    fn fault_injected_walks_preserve_every_invariant(
        placement_pick in 0usize..3,
        gc_pick in 0usize..3,
        steps in 24usize..56,
        seed in 0u64..u64::MAX,
    ) {
        let placement = PlacementPolicy::all()[placement_pick];
        let gc_victim = GcVictimPolicy::all()[gc_pick];
        let config = oracle_config(placement, gc_victim, None);
        let mut v = Flashvisor::new(config);
        let spec = format!("seed={seed},program=0.01,erase=0.005,retire_after=2");
        v.install_fault_plan(Arc::new(FaultPlan::parse(&spec).unwrap()));
        let mut s = Storengine::new(config);
        let mut sp = Scratchpad::new(&PlatformSpec::paper_prototype());
        let mut rng = seed;
        let mut t_us = 1u64;
        let mut successes = 0usize;
        let total_groups = config.total_page_groups();
        let mut shadow = vec![0u32; total_groups as usize];

        check_invariants(&v, &shadow)?;
        for _ in 0..steps {
            t_us += 37;
            let now = SimTime::from_us(t_us);
            let group_bytes = config.page_group_bytes;
            match splitmix64(&mut rng) % 8 {
                0..=4 => {
                    let lg = splitmix64(&mut rng) % 24;
                    let groups = 1 + splitmix64(&mut rng) % 4;
                    let mapped_before: Vec<u64> = (lg..lg + groups)
                        .filter(|g| v.physical_group_of(*g).is_some())
                        .collect();
                    if v.write_section(now, lg * group_bytes, groups * group_bytes, &mut sp).is_ok() {
                        successes += 1;
                        for g in mapped_before {
                            shadow[g as usize] += 1;
                        }
                    } else {
                        for g in lg..lg + groups {
                            shadow[g as usize] = v.overwrite_count(g);
                        }
                    }
                }
                5 => {
                    let _ = s.journal(now, &mut v);
                }
                _ => {
                    let passes = 1 + splitmix64(&mut rng) % 3;
                    for _ in 0..passes {
                        let _ = s.collect_garbage(now, &mut v);
                    }
                    // Condemned rows drain here, exactly like the system
                    // driver's background path; a dry allocator legitimately
                    // leaves rows pending.
                    let _ = v.process_retirements(now);
                }
            }
            check_invariants(&v, &shadow)?;
        }
        prop_assert!(successes > 0, "no operation ever succeeded");
    }

    /// Open-loop tenant walk: tenants arrive into a bounded set of
    /// reusable logical slots, do attributed I/O under their range locks,
    /// and depart mid-run — with slots reused by later tenants (groups
    /// stay mapped across occupants, exactly like the open-loop engine's
    /// slot model) — while the online QoS governor keeps retuning
    /// per-tenant tag-budget overrides from the live owner stats. Every
    /// incremental invariant must hold after every op: in particular the
    /// no-leak check (slot reuse must never strand a group), the
    /// occupied + free + reserved + retired partition, and the per-owner
    /// attribution sum (budget overrides must never lose or double-count
    /// a command) with tenants entering and leaving mid-run.
    #[test]
    fn open_loop_tenant_walks_preserve_every_invariant(
        placement_pick in 0usize..3,
        gc_pick in 0usize..3,
        steps in 24usize..56,
        seed in 0u64..u64::MAX,
    ) {
        let placement = PlacementPolicy::all()[placement_pick];
        let gc_victim = GcVictimPolicy::all()[gc_pick];
        let config = oracle_config(placement, gc_victim, Some(2));
        let mut v = Flashvisor::new(config);
        let mut s = Storengine::new(config);
        let mut sp = Scratchpad::new(&PlatformSpec::paper_prototype());
        let mut governor = QosGovernor::new(
            GovernorConfig {
                window: SimDuration::from_us(100),
                min_budget: 1,
                max_budget: 8,
            },
            SimTime::ZERO,
        );
        // Four reusable slots of four groups each — small enough that the
        // walk cycles tenants through every slot several times.
        const SLOTS: u64 = 4;
        const SLOT_GROUPS: u64 = 4;
        let group_bytes = config.page_group_bytes;
        let slot_bytes = SLOT_GROUPS * group_bytes;
        let mut slot_owner: [Option<u32>; SLOTS as usize] = [None; SLOTS as usize];
        let mut next_tenant = 0u32;
        let mut active: BTreeSet<u32> = BTreeSet::new();
        let total_groups = config.total_page_groups();
        let mut shadow = vec![0u32; total_groups as usize];
        let (mut arrivals, mut departures, mut ticks, mut io_ok) = (0u32, 0u32, 0u32, 0u32);

        let mut rng = seed;
        let mut t_us = 1u64;
        check_invariants(&v, &shadow)?;
        for _ in 0..steps {
            t_us += 37;
            let now = SimTime::from_us(t_us);
            match splitmix64(&mut rng) % 8 {
                // Arrival into a free slot: preload maps whatever the slot's
                // previous occupants left unmapped, the range lock registers
                // the new owner. Exhaustion mid-preload is tolerated — the
                // invariants must hold especially then.
                0..=1 => {
                    let free = (0..SLOTS as usize).find(|&i| slot_owner[i].is_none());
                    if let Some(slot) = free {
                        let base = slot as u64 * slot_bytes;
                        if v.preload_range(base, slot_bytes).is_ok()
                            && v.map_section(base, slot_bytes, LockMode::Write, next_tenant).is_ok()
                        {
                            slot_owner[slot] = Some(next_tenant);
                            active.insert(next_tenant);
                            arrivals += 1;
                            next_tenant += 1;
                        }
                    }
                }
                // Attributed tenant I/O inside its slot (the range lock
                // routes the commands to OwnerId::Kernel(tenant)). Writes
                // feed the shadow overwrite ledger like every other walk.
                2..=4 => {
                    let slot = (splitmix64(&mut rng) % SLOTS) as usize;
                    if slot_owner[slot].is_some() {
                        let base = slot as u64 * slot_bytes;
                        let off = splitmix64(&mut rng) % SLOT_GROUPS;
                        let groups = 1 + splitmix64(&mut rng) % (SLOT_GROUPS - off).max(1);
                        let start = base + off * group_bytes;
                        if splitmix64(&mut rng) % 2 == 0 {
                            let lg0 = start / group_bytes;
                            let mapped_before: Vec<u64> = (lg0..lg0 + groups)
                                .filter(|g| v.physical_group_of(*g).is_some())
                                .collect();
                            if v.write_section(now, start, groups * group_bytes, &mut sp).is_ok() {
                                io_ok += 1;
                                for g in mapped_before {
                                    shadow[g as usize] += 1;
                                }
                            } else {
                                for g in lg0..lg0 + groups {
                                    shadow[g as usize] = v.overwrite_count(g);
                                }
                            }
                        } else if v.read_section(now, start, groups * group_bytes, &mut sp).is_ok() {
                            io_ok += 1;
                        }
                    }
                }
                // Departure: the lock is released and the governor clears
                // the tenant's budget override — but the slot's groups stay
                // mapped for the next occupant (no trim path exists).
                5 => {
                    let slot = (splitmix64(&mut rng) % SLOTS) as usize;
                    if let Some(owner) = slot_owner[slot].take() {
                        v.unmap_owner(owner);
                        governor.retire(owner, v.backbone_mut());
                        active.remove(&owner);
                        departures += 1;
                    }
                }
                // A governor tick over whoever is active right now.
                6 => {
                    governor.rebalance(&active, v.backbone_mut());
                    ticks += 1;
                }
                // Background storage work keeps running underneath.
                _ => {
                    if splitmix64(&mut rng) % 3 == 0 {
                        let _ = s.journal(now, &mut v);
                    } else {
                        let passes = 1 + splitmix64(&mut rng) % 3;
                        for _ in 0..passes {
                            let _ = s.collect_garbage(now, &mut v);
                        }
                    }
                }
            }
            check_invariants(&v, &shadow)?;
        }
        // The walk must actually exercise the churn: tenants came and went,
        // the governor ticked, and attributed I/O landed.
        prop_assert!(arrivals > 0, "no tenant ever arrived");
        prop_assert!(arrivals >= departures, "more departures than arrivals");
        prop_assert!(ticks > 0 || io_ok > 0 || departures > 0, "inert walk");
    }

    /// Crash-recovery oracle: at an arbitrary cut point in a random walk,
    /// the supercap-backed final journal dump plus `recover()`'s replay
    /// must reproduce the pre-crash logical→physical mapping exactly,
    /// leave the reverse index consistent, and rebuild the free pool to
    /// precisely the unmapped-and-erased groups.
    #[test]
    fn journal_replay_reproduces_the_pre_crash_mapping(
        steps in 8usize..32,
        seed in 0u64..u64::MAX,
    ) {
        let config =
            oracle_config(PlacementPolicy::FirstFree, GcVictimPolicy::GreedyMinValid, None);
        let mut v = Flashvisor::new(config);
        // A fault-free plan still arms redo recording: crash/recovery is
        // part of the fault model even when no media fault ever fires.
        v.install_fault_plan(Arc::new(FaultPlan::parse("seed=1").unwrap()));
        let mut s = Storengine::new(config);
        let mut sp = Scratchpad::new(&PlatformSpec::paper_prototype());
        let mut rng = seed;
        let mut t_us = 1u64;
        let group_bytes = config.page_group_bytes;
        for _ in 0..steps {
            t_us += 37;
            let now = SimTime::from_us(t_us);
            match splitmix64(&mut rng) % 8 {
                0..=5 => {
                    let lg = splitmix64(&mut rng) % 24;
                    let groups = 1 + splitmix64(&mut rng) % 4;
                    let _ =
                        v.write_section(now, lg * group_bytes, groups * group_bytes, &mut sp);
                }
                6 => {
                    let _ = s.journal(now, &mut v);
                }
                _ => {
                    let _ = s.collect_garbage(now, &mut v);
                }
            }
        }
        // Power loss: the supercap window persists every commit, then the
        // restarted device replays the journal.
        t_us += 37;
        let pre: BTreeMap<u64, u64> = v.mapped_groups().collect();
        prop_assert!(s.journal(SimTime::from_us(t_us), &mut v).is_ok());
        prop_assert_eq!(v.unflushed_redo_records(), 0);
        v.recover();
        let post: BTreeMap<u64, u64> = v.mapped_groups().collect();
        prop_assert_eq!(&pre, &post);
        for (&lg, &pg) in &post {
            prop_assert_eq!(v.logical_group_mapped_to(pg), Some(lg));
        }
        // The crash touched no media: the valid-page index still mirrors
        // the dies, and the rebuilt free pool is exactly the unmapped,
        // fully-erased, unfenced groups.
        prop_assert_eq!(
            v.backbone().total_valid_pages(),
            v.backbone().recount_valid_pages()
        );
        let free_set: BTreeSet<u64> = v.freespace().debug_free_groups().into_iter().collect();
        for g in 0..config.total_page_groups() {
            let expect_free = v.logical_group_mapped_to(g).is_none()
                && v.backbone().valid_index().group_programmed_pages(g) == 0
                && !v.freespace().is_reserved(g)
                && !v.freespace().is_retired(g);
            prop_assert!(
                free_set.contains(&g) == expect_free,
                "group {} free-pool membership diverged after replay",
                g
            );
        }
        // And the recovered allocator still serves the data path.
        t_us += 37;
        let _ = v.write_section(SimTime::from_us(t_us), 0, group_bytes, &mut sp);
        prop_assert_eq!(
            v.backbone().total_valid_pages(),
            v.backbone().recount_valid_pages()
        );
    }

    /// Randomized *batched* accounting: arbitrary `submit_batch` command
    /// runs and vectored `invalidate_group` calls never desynchronize the
    /// dense valid-page index and per-owner stats arrays from brute-force
    /// map-based recounts the walk keeps on the side. This pins the PR6
    /// dense/batched bookkeeping against the semantics the old per-command
    /// map-based accounting defined.
    #[test]
    fn batched_accounting_always_equals_map_recounts(
        steps in 32usize..96,
        seed in 0u64..u64::MAX,
    ) {
        let geometry = FlashGeometry {
            channels: 2,
            packages_per_channel: 1,
            dies_per_package: 1,
            planes_per_die: 1,
            blocks_per_plane: 8,
            pages_per_block: 16,
            page_bytes: 4096,
        };
        let pages_per_group = 2u64;
        let mut bb =
            FlashBackbone::new(geometry, FlashTiming::fast_for_tests(), 2.5e9, 16, 100_000);
        bb.set_qos_budgets(QosBudgets { per_owner: Some(4), background: Some(2) });
        bb.enable_group_tracking(pages_per_group);

        let owners = [
            OwnerId::Kernel(0),
            OwnerId::Kernel(3),
            OwnerId::Gc,
            OwnerId::Journal,
            OwnerId::Unattributed,
        ];
        let total_blocks = geometry.total_blocks();
        let total_groups = geometry.total_pages() / pages_per_group;
        let pages_per_block = geometry.pages_per_block as u64;
        let page_bytes = geometry.page_bytes as u64;
        let addr_of = |block: u64, page: u64| {
            let (ch, die, blk) = geometry.block_index_to_addr(block);
            PhysicalPageAddr::new(ch, die, blk, page as usize)
        };
        // The map-based shadows: per-block write cursors (NAND programs
        // ascend from the cursor, reset by erase), the set of valid flat
        // pages, and a per-owner (reads, programs, erases, bytes) ledger.
        let mut cursor: BTreeMap<u64, u64> = (0..total_blocks).map(|b| (b, 0)).collect();
        let mut valid: BTreeSet<u64> = BTreeSet::new();
        let mut ledger: BTreeMap<OwnerId, (u64, u64, u64, u64)> = BTreeMap::new();

        let mut rng = seed;
        let mut t_us = 1u64;
        for _ in 0..steps {
            t_us += 13;
            let now = SimTime::from_us(t_us);
            let owner = owners[(splitmix64(&mut rng) % owners.len() as u64) as usize];
            match splitmix64(&mut rng) % 8 {
                // Program a run of fresh pages in one block, batched.
                0..=3 => {
                    let b = splitmix64(&mut rng) % total_blocks;
                    let at = cursor[&b];
                    let run = (1 + splitmix64(&mut rng) % 6).min(pages_per_block - at);
                    if run == 0 {
                        continue;
                    }
                    let cmds: Vec<FlashCommand> =
                        (at..at + run).map(|p| FlashCommand::program(addr_of(b, p))).collect();
                    let done = bb.submit_batch(now, cmds, owner);
                    prop_assert!(done.is_ok(), "program batch failed: {:?}", done);
                    cursor.insert(b, at + run);
                    for p in at..at + run {
                        valid.insert(geometry.addr_to_flat(addr_of(b, p)));
                    }
                    let e = ledger.entry(owner).or_default();
                    e.1 += run;
                    e.3 += run * page_bytes;
                }
                // Read a run of currently valid pages, batched.
                4..=5 => {
                    if valid.is_empty() {
                        continue;
                    }
                    let flats: Vec<u64> = valid.iter().copied().collect();
                    let want = 1 + (splitmix64(&mut rng) % 8) as usize;
                    let cmds: Vec<FlashCommand> = (0..want)
                        .map(|_| flats[(splitmix64(&mut rng) % flats.len() as u64) as usize])
                        .map(|flat| FlashCommand::read(geometry.flat_to_addr(flat)))
                        .collect();
                    let n = cmds.len() as u64;
                    prop_assert!(bb.submit_batch(now, cmds, owner).is_ok());
                    let e = ledger.entry(owner).or_default();
                    e.0 += n;
                    e.3 += n * page_bytes;
                }
                // Vectored group invalidation (the write path's overwrite
                // shape); unwritten pages inside the group are benign and
                // charge no owner.
                6 => {
                    let g = splitmix64(&mut rng) % total_groups;
                    prop_assert!(bb
                        .invalidate_group(g * pages_per_group, pages_per_group)
                        .is_ok());
                    for i in 0..pages_per_group {
                        valid.remove(&(g * pages_per_group + i));
                    }
                }
                // Erase one block (GC's reclaim step), batched.
                _ => {
                    let b = splitmix64(&mut rng) % total_blocks;
                    let cmd = std::iter::once(FlashCommand::erase(addr_of(b, 0)));
                    prop_assert!(bb.submit_batch(now, cmd, owner).is_ok());
                    cursor.insert(b, 0);
                    valid.retain(|&flat| {
                        geometry.block_index(geometry.flat_to_addr(flat)) != b
                    });
                    ledger.entry(owner).or_default().2 += 1;
                }
            }

            // Dense valid-page index vs the map recount, per block and per
            // group, and vs the primary-state (die page state) recount.
            for b in 0..total_blocks {
                let expect = valid
                    .iter()
                    .filter(|&&f| geometry.block_index(geometry.flat_to_addr(f)) == b)
                    .count();
                prop_assert_eq!(bb.valid_index().valid_in(b) as usize, expect);
            }
            prop_assert_eq!(bb.total_valid_pages(), valid.len());
            prop_assert_eq!(bb.recount_valid_pages(), valid.len());
            for g in 0..total_groups {
                let expect = (0..pages_per_group)
                    .filter(|i| valid.contains(&(g * pages_per_group + i)))
                    .count() as u32;
                prop_assert_eq!(bb.valid_index().group_valid_pages(g), expect);
            }
            // Dense owner-stats arrays vs the map ledger, both directions:
            // every commanded owner's counts match, and no phantom owner
            // slot ever surfaces.
            let stats = bb.owner_stats();
            for (owner, s) in &stats {
                let &(reads, programs, erases, bytes) =
                    ledger.get(owner).unwrap_or(&(0, 0, 0, 0));
                prop_assert_eq!(
                    (s.reads, s.programs, s.erases, s.bytes),
                    (reads, programs, erases, bytes)
                );
            }
            for (owner, &(reads, programs, erases, bytes)) in &ledger {
                if reads + programs + erases + bytes > 0 {
                    prop_assert!(stats.contains_key(owner), "owner {:?} missing", owner);
                }
            }
        }
    }
}

/// The wear-leveling payoff, pinned as a deterministic unit test: on a
/// churn workload that repeatedly overwrites a small logical window and
/// lets GC reclaim the garbage, `LeastWorn` placement spreads erases
/// across the block rows while `FirstFree`'s recycled-FIFO order keeps
/// hammering the same rows — so the erase-count spread (max − min over
/// data blocks) narrows.
#[test]
fn least_worn_narrows_erase_spread_vs_first_free() {
    fn churn(placement: PlacementPolicy) -> (u64, u64, f64) {
        let mut config = oracle_config(placement, GcVictimPolicy::GreedyMinValid, None);
        config.gc_low_watermark = 0.55;
        let mut v = Flashvisor::new(config);
        let mut s = Storengine::new(config);
        let mut sp = Scratchpad::new(&PlatformSpec::paper_prototype());
        let group_bytes = config.page_group_bytes;
        let mut now_us = 1u64;
        for round in 0..400u64 {
            let lg = round % 16;
            now_us += 53;
            let _ = v.write_section(
                SimTime::from_us(now_us),
                lg * group_bytes,
                group_bytes,
                &mut sp,
            );
            while s.gc_needed(&v) {
                now_us += 211;
                if s.collect_garbage(SimTime::from_us(now_us), &mut v).is_err() {
                    break;
                }
            }
        }
        // Wear over the data blocks (the reserved journal row is excluded;
        // one shared definition in Flashvisor::data_block_wear).
        let wear = v.data_block_wear();
        (wear.min_erases, wear.max_erases, wear.stddev_erases)
    }

    let (ff_min, ff_max, ff_stddev) = churn(PlacementPolicy::FirstFree);
    let (lw_min, lw_max, lw_stddev) = churn(PlacementPolicy::LeastWorn);
    assert!(
        lw_max - lw_min < ff_max - ff_min,
        "LeastWorn spread {}..{} should be narrower than FirstFree {}..{}",
        lw_min,
        lw_max,
        ff_min,
        ff_max,
    );
    assert!(
        lw_stddev < ff_stddev,
        "LeastWorn stddev {lw_stddev} should beat FirstFree {ff_stddev}"
    );
}
