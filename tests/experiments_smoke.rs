//! Smoke tests for the experiment harness: every figure's report generates
//! at a coarse data scale and contains the rows the paper's figures have.
//!
//! These are the integration-level guarantee that `cargo run -p fa-bench
//! --bin <figure>` will produce the expected output shape; the full-scale
//! numbers live in `EXPERIMENTS.md`.

use fa_bench::experiments::{
    fig10_throughput, fig11_latency, fig13_energy, fig14_utilization, fig16_bigdata, tables,
    Campaign,
};
use fa_bench::runner::{
    heterogeneous_workload, homogeneous_workload, run_on, ExperimentScale, SystemKind,
    UnifiedOutcome,
};
use fa_workloads::polybench::PolyBench;
use flashabacus::SchedulerPolicy;

/// Coarse scale for smoke testing.
const SCALE: ExperimentScale = ExperimentScale { data_scale: 512 };

#[test]
fn static_tables_render() {
    let t1 = tables::table1();
    assert!(t1.contains("LWP"));
    assert!(t1.contains("Flash backbone"));
    let t2 = tables::table2();
    assert!(t2.contains("ATAX"));
    assert!(t2.contains("MX14"));
}

#[test]
fn figure_reports_render_from_a_small_campaign() {
    // One homogeneous workload across all five systems is enough to check
    // that every figure module renders consistent tables.
    let apps = homogeneous_workload(PolyBench::Mvt, SCALE);
    let outcomes: Vec<UnifiedOutcome> = SystemKind::all()
        .iter()
        .map(|s| run_on(*s, "MVT", &apps))
        .collect();
    let campaign = Campaign {
        outcomes,
        workloads: vec!["MVT".to_string()],
    };

    let throughput = fig10_throughput::report_homogeneous(&campaign);
    assert!(throughput.contains("MVT"));
    assert!(throughput.contains("IntraO3"));

    let latency = fig11_latency::report_homogeneous(&campaign);
    assert!(latency.contains("1.00/1.00/1.00"));

    let energy = fig13_energy::report_homogeneous(&campaign);
    assert!(energy.contains("(1.00)"));

    let utilization = fig14_utilization::report_homogeneous(&campaign);
    assert!(utilization.contains('%'));

    // The headline direction holds even at the coarse smoke-test scale.
    let saving = fig13_energy::mean_energy_saving(
        &campaign,
        SystemKind::FlashAbacus(SchedulerPolicy::IntraO3),
    );
    assert!(saving > 0.0, "expected an energy saving, got {saving}");
}

#[test]
fn heterogeneous_mix_runs_across_all_systems() {
    let apps = heterogeneous_workload(1, ExperimentScale { data_scale: 1024 });
    assert_eq!(apps.len(), 24);
    for system in [
        SystemKind::Simd,
        SystemKind::FlashAbacus(SchedulerPolicy::InterSt),
        SystemKind::FlashAbacus(SchedulerPolicy::IntraO3),
    ] {
        let out = run_on(system, "MX1", &apps);
        assert_eq!(out.completion_times.len(), 24, "{}", system.label());
        assert!(out.throughput_mb_s > 0.0, "{}", system.label());
    }
}

#[test]
fn bigdata_figure_renders_for_all_five_apps() {
    let campaign = Campaign::bigdata(ExperimentScale { data_scale: 1024 });
    let report = fig16_bigdata::report(&campaign);
    for app in ["bfs", "wc", "nn", "nw", "path"] {
        assert!(report.contains(app), "missing {app}");
    }
}
