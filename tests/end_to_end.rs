//! End-to-end integration tests spanning the whole workspace: workloads are
//! built from Table 2, run on both the FlashAbacus device and the
//! conventional baseline, and the headline comparisons of the paper are
//! checked in direction (who wins), not in absolute numbers.

use flashabacus_suite::prelude::*;

/// Data-scale divisor used by these tests (coarse, to keep CI fast).
const SCALE: u64 = 256;

fn homogeneous(bench: PolyBench, instances: usize) -> Vec<Application> {
    instantiate_many(
        &[polybench_app(bench, SCALE)],
        &InstancePlan {
            instances_per_app: instances,
            ..Default::default()
        },
    )
}

fn run_flashabacus(policy: SchedulerPolicy, apps: &[Application]) -> RunOutcome {
    let mut system = FlashAbacusSystem::new(FlashAbacusConfig::paper_prototype(policy));
    system.run(apps).expect("FlashAbacus run completes")
}

#[test]
fn flashabacus_outperforms_simd_on_data_intensive_workloads() {
    // The paper's headline: for data-intensive kernels the self-governing
    // accelerator both processes data faster and uses less energy than the
    // conventional system (Figures 10a and 13a).
    for bench in [PolyBench::Atax, PolyBench::Mvt, PolyBench::Gesum] {
        let apps = homogeneous(bench, 6);
        let mut simd = ConventionalSystem::new(BaselineConfig::paper_baseline());
        let base = simd.run(&apps);
        let fa = run_flashabacus(SchedulerPolicy::IntraO3, &apps);
        assert!(
            fa.throughput_mb_s() > base.throughput_mb_s(),
            "{bench:?}: FlashAbacus {:.1} MB/s vs SIMD {:.1} MB/s",
            fa.throughput_mb_s(),
            base.throughput_mb_s()
        );
        assert!(
            fa.energy.total_j() < base.energy.total_j(),
            "{bench:?}: FlashAbacus {:.2} J vs SIMD {:.2} J",
            fa.energy.total_j(),
            base.energy.total_j()
        );
    }
}

#[test]
fn all_four_schedulers_process_the_same_data() {
    let apps = homogeneous(PolyBench::Fdtd, 4);
    let expected_bytes: u64 = apps.iter().map(|a| a.flash_bytes()).sum();
    for policy in SchedulerPolicy::all() {
        let out = run_flashabacus(policy, &apps);
        assert_eq!(out.bytes_processed, expected_bytes, "{policy:?}");
        assert_eq!(out.kernel_latencies.len(), 4, "{policy:?}");
        assert!(out.flash_group_reads > 0, "{policy:?}");
    }
}

#[test]
fn dynamic_scheduling_improves_on_static_for_unbalanced_batches() {
    // Seven instances over six workers: the static policy must double up on
    // one worker while the dynamic one rebalances (Figure 10 discussion).
    let apps = homogeneous(PolyBench::TwoDConv, 7);
    let st = run_flashabacus(SchedulerPolicy::InterSt, &apps);
    let dy = run_flashabacus(SchedulerPolicy::InterDy, &apps);
    assert!(
        dy.finished_at <= st.finished_at,
        "InterDy {:?} should not be slower than InterSt {:?}",
        dy.finished_at,
        st.finished_at
    );
}

#[test]
fn out_of_order_scheduling_tolerates_serial_microblocks() {
    // ADI and FDTD carry serial microblocks; the out-of-order scheduler
    // hides them behind other kernels' screens (§5.1).
    for bench in [PolyBench::Adi, PolyBench::Fdtd] {
        let apps = homogeneous(bench, 6);
        let io = run_flashabacus(SchedulerPolicy::IntraIo, &apps);
        let o3 = run_flashabacus(SchedulerPolicy::IntraO3, &apps);
        assert!(
            o3.finished_at <= io.finished_at,
            "{bench:?}: IntraO3 {:?} vs IntraIo {:?}",
            o3.finished_at,
            io.finished_at
        );
        assert!(o3.mean_worker_utilization() + 1e-9 >= io.mean_worker_utilization());
    }
}

#[test]
fn compute_intensive_workloads_show_small_simd_gap() {
    // For compute-intensive kernels the data-movement advantage shrinks
    // (Figure 10a's right half): FlashAbacus should not lose badly, and the
    // gap must be far smaller than for data-intensive kernels.
    let apps = homogeneous(PolyBench::Gemm, 6);
    let mut simd = ConventionalSystem::new(BaselineConfig::paper_baseline());
    let base = simd.run(&apps);
    let fa = run_flashabacus(SchedulerPolicy::InterDy, &apps);
    let ratio = fa.finished_at.as_secs_f64() / base.finished_at.as_secs_f64();
    assert!(
        ratio < 2.0,
        "FlashAbacus should stay within 2x of SIMD on GEMM, ratio {ratio:.2}"
    );
}

#[test]
fn graph_workloads_run_on_both_systems() {
    // §5.6: the graph/big-data applications are data-intensive and favour
    // the near-flash design.
    let apps = instantiate_many(
        &[bigdata_app(BigDataBench::Bfs, SCALE)],
        &InstancePlan {
            instances_per_app: 4,
            ..Default::default()
        },
    );
    let mut simd = ConventionalSystem::new(BaselineConfig::paper_baseline());
    let base = simd.run(&apps);
    let fa = run_flashabacus(SchedulerPolicy::IntraO3, &apps);
    assert!(fa.throughput_mb_s() > base.throughput_mb_s());
    assert!(fa.energy.total_j() < base.energy.total_j());
}

#[test]
fn storengine_journals_on_long_runs_without_affecting_correctness() {
    // A batch large enough to cross several journal intervals still
    // completes and reports monotone completion times.
    let apps = homogeneous(PolyBench::Adi, 8);
    let out = run_flashabacus(SchedulerPolicy::InterDy, &apps);
    let cdf = out.completion_cdf();
    for pair in cdf.windows(2) {
        assert!(pair[0].0 <= pair[1].0);
    }
    assert_eq!(cdf.len(), 8);
}
