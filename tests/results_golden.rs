//! End-to-end results-invariance guard for the data path.
//!
//! The free-space / GC subsystem is a pure data-structure speedup: under the
//! default `FirstFree` placement policy the simulated physics — allocation
//! order, page addresses, command timing — must be exactly what the
//! scan-era code produced. This test pins a small campaign's rendered
//! report, byte for byte, against a golden file generated before the
//! refactor, and additionally checks that the rendering is identical when
//! the campaign is fanned across worker threads.
//!
//! Regenerate the golden file (only when an *intentional* physics change
//! lands) with:
//! ```text
//! FA_BLESS_GOLDEN=1 cargo test --test results_golden
//! ```

use fa_bench::report::Table;
use fa_bench::runner::{
    homogeneous_workload, run_pairs_with_threads, ExperimentScale, UnifiedOutcome,
};
use fa_kernel::model::Application;
use fa_workloads::polybench::PolyBench;
use std::path::PathBuf;

/// The pinned campaign: two homogeneous PolyBench workloads, every system,
/// at a fixed explicit scale (never read from the environment, so the test
/// result does not depend on `FA_DATA_SCALE`).
fn workloads() -> Vec<(String, Vec<Application>)> {
    let scale = ExperimentScale { data_scale: 512 };
    vec![
        (
            "GEMM".to_string(),
            homogeneous_workload(PolyBench::Gemm, scale),
        ),
        (
            "ATAX".to_string(),
            homogeneous_workload(PolyBench::Atax, scale),
        ),
    ]
}

/// Renders the campaign with enough digits that any drift in simulated
/// physics — an allocation handed out in a different order, a page landing
/// on a different die, a GC pass running at a different instant — shows up
/// as a byte difference.
fn render(outcomes: &[UnifiedOutcome]) -> String {
    let mut table = Table::new(
        "Golden campaign: homogeneous GEMM + ATAX at 1/512 scale",
        &[
            "Workload",
            "System",
            "total_s",
            "throughput_mb_s",
            "energy_j",
            "latency_avg_s",
            "completions",
        ],
    );
    for out in outcomes {
        table.row(vec![
            out.workload.clone(),
            out.system.label().to_string(),
            format!("{:.9}", out.total_seconds),
            format!("{:.6}", out.throughput_mb_s),
            format!("{:.6}", out.total_energy_j()),
            format!("{:.9}", out.latency_min_avg_max.1),
            format!("{}", out.completion_times.len()),
        ]);
    }
    table.render()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("small_campaign.txt")
}

#[test]
fn default_policy_report_is_byte_identical_to_golden() {
    let rendered = render(&run_pairs_with_threads(&workloads(), 1));
    let path = golden_path();
    if std::env::var("FA_BLESS_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless it first",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "campaign report drifted from the golden bytes — the default \
         FirstFree data path is no longer reproducing the recorded physics"
    );
}

#[test]
fn report_is_deterministic_across_thread_counts() {
    let w = workloads();
    let serial = render(&run_pairs_with_threads(&w, 1));
    let parallel = render(&run_pairs_with_threads(&w, 4));
    assert_eq!(serial, parallel, "FA_THREADS=1 vs 4 rendering diverged");
}
