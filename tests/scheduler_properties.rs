//! Property-based integration tests over randomly generated workloads: the
//! invariants that must hold for *any* batch, not just the paper's.

use flashabacus_suite::prelude::*;
use proptest::prelude::*;

/// Builds a randomized application from generated parameters.
fn build_app(
    name: &str,
    instructions: u64,
    serial_fraction: f64,
    input_kb: u64,
    ldst_ratio: f64,
    screens: usize,
) -> Application {
    synthetic_app(
        name,
        &SyntheticSpec {
            instructions,
            serial_fraction,
            input_bytes: input_kb * 1024,
            output_bytes: input_kb * 128,
            ldst_ratio,
            mul_ratio: 0.1,
            parallel_screens: screens,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every policy completes every generated batch, reports one latency
    /// record per kernel, and never loses track of data volume.
    #[test]
    fn every_policy_completes_every_batch(
        instances in 1usize..5,
        instructions in 50_000u64..2_000_000,
        serial_fraction in 0.0f64..0.6,
        input_kb in 16u64..512,
        ldst_ratio in 0.2f64..0.55,
        screens in 1usize..8,
    ) {
        let template = build_app("prop", instructions, serial_fraction, input_kb, ldst_ratio, screens);
        let apps = instantiate_many(&[template], &InstancePlan {
            instances_per_app: instances,
            ..Default::default()
        });
        let expected_bytes: u64 = apps.iter().map(|a| a.flash_bytes()).sum();
        for policy in SchedulerPolicy::all() {
            let mut system = FlashAbacusSystem::new(FlashAbacusConfig::tiny_for_tests(policy));
            let out = system.run(&apps).expect("run completes");
            prop_assert_eq!(out.kernel_latencies.len(), instances);
            prop_assert_eq!(out.bytes_processed, expected_bytes);
            prop_assert!(out.finished_at.as_secs_f64() > 0.0);
            // Kernel completions never precede their offload.
            for k in &out.kernel_latencies {
                prop_assert!(k.completed_at >= k.offloaded_at);
            }
            // Utilization is a fraction.
            for u in &out.worker_utilization {
                prop_assert!((0.0..=1.0).contains(u));
            }
            // Energy categories are non-negative.
            prop_assert!(out.energy.breakdown.computation_j >= 0.0);
            prop_assert!(out.energy.breakdown.storage_access_j >= 0.0);
            prop_assert!(out.energy.breakdown.data_movement_j >= 0.0);
        }
    }

    /// The out-of-order intra-kernel scheduler never finishes later than the
    /// in-order one on the same batch: borrowing screens can only help.
    #[test]
    fn out_of_order_never_loses_to_in_order(
        instances in 2usize..6,
        serial_fraction in 0.0f64..0.7,
        input_kb in 16u64..256,
    ) {
        let template = build_app("o3", 400_000, serial_fraction, input_kb, 0.4, 4);
        let apps = instantiate_many(&[template], &InstancePlan {
            instances_per_app: instances,
            ..Default::default()
        });
        let mut io = FlashAbacusSystem::new(FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraIo));
        let mut o3 = FlashAbacusSystem::new(FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3));
        let io_out = io.run(&apps).expect("in-order completes");
        let o3_out = o3.run(&apps).expect("out-of-order completes");
        prop_assert!(
            o3_out.finished_at <= io_out.finished_at,
            "IntraO3 {:?} finished after IntraIo {:?}",
            o3_out.finished_at,
            io_out.finished_at
        );
    }

    /// The conventional baseline also completes any generated batch, and its
    /// time breakdown accounts for every phase.
    #[test]
    fn baseline_time_breakdown_is_consistent(
        instances in 1usize..4,
        serial_fraction in 0.0f64..0.5,
        input_kb in 64u64..1024,
    ) {
        let template = build_app("base", 600_000, serial_fraction, input_kb, 0.4, 8);
        let apps = instantiate_many(&[template], &InstancePlan {
            instances_per_app: instances,
            ..Default::default()
        });
        let mut system = ConventionalSystem::new(BaselineConfig::paper_baseline());
        let out = system.run(&apps);
        prop_assert_eq!(out.kernel_latencies.len(), instances);
        let (a, s, h) = out.time_breakdown.fractions();
        prop_assert!(a > 0.0 && s > 0.0 && h > 0.0);
        prop_assert!((a + s + h - 1.0).abs() < 1e-9);
        prop_assert!(out.host_cpu_utilization >= 0.0 && out.host_cpu_utilization <= 1.0);
    }
}
