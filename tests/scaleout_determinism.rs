//! Determinism guard for the open-loop multi-tenant traffic engine.
//!
//! The engine's contract (`flashabacus::openloop`): a campaign is a pure
//! function of `(templates, arrival plan, scaleout config)`. The arrival
//! schedule is precomputed from the seed, every flash request is issued at
//! event-processing instants visited in non-decreasing time order, and the
//! channel-sharded executor replays effects in serial submission order —
//! so the same `FA_ARRIVALS` spec must reproduce the campaign byte for
//! byte, and `FA_SHARDS` may change wall-clock time only.
//!
//! Both properties are pinned against [`OpenLoopReport::digest`], which
//! encodes every per-tenant record, every admission decision, and the
//! aggregate counters (f64s as exact bit patterns). Zero tolerance: one
//! reordered completion, one flipped admission, one ulp of drift fails.
//!
//! `FA_ARRIVALS`/`FA_SHARDS` are process-global, so the tests serialize on
//! `ENV_LOCK` like `shard_determinism.rs`.

use fa_bench::experiments::scaleout::run_scaleout_campaign;
use fa_sim::arrivals::ArrivalPlan;
use fa_workloads::tenants::tenant_templates;
use flashabacus::openloop::{AdmissionDecision, OpenLoopReport};
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// An overloaded bursty campaign: 128 tenants arriving faster than the six
/// slots drain, so the trace exercises every admission path (direct
/// admission, queueing, FIFO promotion, and shedding past the full queue).
const ARRIVAL_SPEC: &str =
    "seed=42,rate=20000,tenants=128,shape=onoff,on_ms=5,off_ms=15,templates=3";

fn campaign_from_env() -> OpenLoopReport {
    let plan = ArrivalPlan::from_env()
        .expect("FA_ARRIVALS parses")
        .expect("FA_ARRIVALS is set");
    run_scaleout_campaign(&tenant_templates(1024), &plan, true)
}

#[test]
fn same_arrival_spec_reproduces_the_campaign_byte_for_byte() {
    let _env = ENV_LOCK.lock().unwrap();
    std::env::set_var("FA_ARRIVALS", ARRIVAL_SPEC);
    let a = campaign_from_env();
    let b = campaign_from_env();
    std::env::remove_var("FA_ARRIVALS");

    // The campaign must be rich enough to mean something: every admission
    // path taken, the governor live, and tenants actually completing.
    assert!(a.outcome.tenants_queued > 0, "no tenant ever queued");
    assert!(a.outcome.tenants_shed > 0, "no tenant was ever shed");
    assert!(
        a.admissions
            .iter()
            .any(|r| r.decision == AdmissionDecision::Promoted),
        "no queued tenant was ever promoted"
    );
    assert!(a.outcome.governor_updates > 0, "governor never ticked");
    assert!(
        a.tenants.iter().any(|t| t.completed_at.is_some()),
        "no tenant completed"
    );

    // Byte-identical per-tenant stats and admission trace.
    assert_eq!(a.tenants, b.tenants, "per-tenant records diverged");
    assert_eq!(a.admissions, b.admissions, "admission trace diverged");
    assert_eq!(
        a.digest(),
        b.digest(),
        "same FA_ARRIVALS seed produced different campaign digests"
    );
}

#[test]
fn digest_is_invariant_across_shard_counts() {
    let _env = ENV_LOCK.lock().unwrap();
    std::env::set_var("FA_ARRIVALS", ARRIVAL_SPEC);
    let mut baseline: Option<String> = None;
    for shards in [1usize, 2, 4, 7] {
        std::env::set_var("FA_SHARDS", shards.to_string());
        let digest = campaign_from_env().digest();
        match &baseline {
            None => baseline = Some(digest),
            Some(base) => assert_eq!(
                &digest, base,
                "FA_SHARDS={shards} diverged from the 1-shard campaign — \
                 the open-loop engine leaked shard structure into the physics"
            ),
        }
    }
    std::env::remove_var("FA_SHARDS");
    std::env::remove_var("FA_ARRIVALS");
}
