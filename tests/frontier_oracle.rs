//! Property test: the incrementally maintained ready frontier always equals
//! a naive full-rescan oracle, under arbitrary `mark_running`/`mark_done`
//! interleavings, for the view every one of the four `SchedulerPolicy`
//! consumers takes of it.
//!
//! The oracle recomputes readiness from scratch each step using only
//! `state()` and the microblock ordering rule, so a divergence pinpoints a
//! bug in the frontier bookkeeping rather than in the oracle.

use flashabacus_suite::fa_kernel::chain::{ExecutionChain, ScreenRef, ScreenState};
use flashabacus_suite::fa_kernel::instance::{instantiate_many, InstancePlan};
use flashabacus_suite::fa_kernel::model::{AppId, Application, ApplicationBuilder, DataSection};
use flashabacus_suite::fa_platform::lwp::InstructionMix;
use flashabacus_suite::fa_sim::time::SimTime;
use flashabacus_suite::flashabacus::scheduler::{
    intra_next_ready, intra_ready_screens, SchedulerPolicy,
};
use proptest::prelude::*;

/// Builds a batch whose shape (kernels, microblocks, screens per
/// microblock) is derived from the generated parameters.
fn build_batch(
    instances: usize,
    kernels: usize,
    microblocks: usize,
    screens: usize,
) -> Vec<Application> {
    let mix = InstructionMix::new(10_000, 0.4, 0.1);
    let mut builder = ApplicationBuilder::new("oracle");
    for ki in 0..kernels {
        // Vary the screen count per microblock a little so microblocks are
        // not all the same width (the cascade has to handle both).
        let blocks: Vec<(usize, InstructionMix, u64, u64)> = (0..microblocks)
            .map(|mi| (1 + (screens + mi + ki) % 4, mix, 4096u64, 512u64))
            .collect();
        builder = builder.kernel(
            format!("oracle-k{ki}"),
            DataSection {
                flash_base: 0,
                input_bytes: 4096 * microblocks as u64,
                output_bytes: 512 * microblocks as u64,
            },
            &blocks,
        );
    }
    let template = builder.build(AppId(0));
    instantiate_many(
        &[template],
        &InstancePlan {
            instances_per_app: instances,
            ..Default::default()
        },
    )
}

/// Full-rescan oracle: every pending screen whose microblock is eligible,
/// recomputed from scratch via `state()` alone.
fn oracle_ready(chain: &ExecutionChain, apps: &[Application]) -> Vec<ScreenRef> {
    let mut ready = Vec::new();
    for (ai, app) in apps.iter().enumerate() {
        for (ki, kernel) in app.kernels.iter().enumerate() {
            for (mi, mblock) in kernel.microblocks.iter().enumerate() {
                let eligible = mi == 0
                    || kernel.microblocks[mi - 1]
                        .screens
                        .iter()
                        .enumerate()
                        .all(|(si, _)| {
                            matches!(
                                chain.state(ScreenRef {
                                    app: ai,
                                    kernel: ki,
                                    microblock: mi - 1,
                                    screen: si,
                                }),
                                Some(ScreenState::Done)
                            )
                        });
                if !eligible {
                    continue;
                }
                for si in 0..mblock.screens.len() {
                    let r = ScreenRef {
                        app: ai,
                        kernel: ki,
                        microblock: mi,
                        screen: si,
                    };
                    if matches!(chain.state(r), Some(ScreenState::Pending)) {
                        ready.push(r);
                    }
                }
            }
        }
    }
    ready
}

/// Full-rescan oracle for the earliest incomplete microblock.
fn oracle_earliest_incomplete(
    chain: &ExecutionChain,
    apps: &[Application],
) -> Option<(usize, usize, usize)> {
    for (ai, app) in apps.iter().enumerate() {
        for (ki, kernel) in app.kernels.iter().enumerate() {
            for (mi, mblock) in kernel.microblocks.iter().enumerate() {
                let all_done = mblock.screens.iter().enumerate().all(|(si, _)| {
                    matches!(
                        chain.state(ScreenRef {
                            app: ai,
                            kernel: ki,
                            microblock: mi,
                            screen: si,
                        }),
                        Some(ScreenState::Done)
                    )
                });
                if !all_done {
                    return Some((ai, ki, mi));
                }
            }
        }
    }
    None
}

/// Checks every frontier view each of the four scheduler policies consumes
/// against the oracle's from-scratch answer.
fn assert_frontier_matches_oracle(
    chain: &ExecutionChain,
    apps: &[Application],
) -> Result<(), String> {
    let oracle = oracle_ready(chain, apps);

    // The raw frontier, its count, and its deterministic order.
    let frontier: Vec<ScreenRef> = chain.frontier().collect();
    prop_assert_eq!(&frontier, &oracle);
    prop_assert_eq!(chain.ready_count(), oracle.len());
    prop_assert_eq!(chain.ready_screens(), oracle.clone());

    // IntraO3 consumes the global head of the frontier.
    prop_assert_eq!(
        intra_next_ready(SchedulerPolicy::IntraO3, chain),
        oracle.first().copied()
    );
    prop_assert_eq!(
        intra_ready_screens(SchedulerPolicy::IntraO3, chain),
        oracle.clone()
    );

    // IntraIo consumes the head of the earliest incomplete microblock.
    let earliest = oracle_earliest_incomplete(chain, apps);
    prop_assert_eq!(chain.earliest_incomplete_microblock(), earliest);
    let io_oracle: Vec<ScreenRef> = match earliest {
        Some((ai, ki, mi)) => oracle
            .iter()
            .copied()
            .filter(|r| r.app == ai && r.kernel == ki && r.microblock == mi)
            .collect(),
        None => Vec::new(),
    };
    prop_assert_eq!(
        intra_next_ready(SchedulerPolicy::IntraIo, chain),
        io_oracle.first().copied()
    );
    prop_assert_eq!(
        intra_ready_screens(SchedulerPolicy::IntraIo, chain),
        io_oracle
    );

    // InterSt/InterDy consume the per-kernel head (both policies take the
    // same frontier view; they differ only in which kernel they ask about).
    for (ai, app) in apps.iter().enumerate() {
        for ki in 0..app.kernels.len() {
            let kernel_oracle: Vec<ScreenRef> = oracle
                .iter()
                .copied()
                .filter(|r| r.app == ai && r.kernel == ki)
                .collect();
            prop_assert_eq!(
                chain.next_ready_of_kernel(ai, ki),
                kernel_oracle.first().copied()
            );
            prop_assert_eq!(chain.ready_screens_of_kernel(ai, ki), kernel_oracle);
        }
    }
    Ok(())
}

/// Deterministic splitmix64 step, used to derive the random walk from a
/// generated seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Case count: 16 by default (each case drives a full random walk), raised
/// via `FA_ORACLE_CASES` by the CI release-oracle job.
fn oracle_cases() -> u32 {
    std::env::var("FA_ORACLE_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v| *v > 0)
        .unwrap_or(16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(oracle_cases()))]

    /// Random dispatch/retire interleavings never desynchronize the
    /// frontier from the full-rescan oracle.
    #[test]
    fn frontier_always_equals_full_rescan_oracle(
        instances in 1usize..4,
        kernels in 1usize..3,
        microblocks in 1usize..4,
        screens in 1usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let apps = build_batch(instances, kernels, microblocks, screens);
        let mut chain = ExecutionChain::new(&apps);
        let mut rng = seed;
        let mut running: Vec<ScreenRef> = Vec::new();
        let mut t = 0u64;

        assert_frontier_matches_oracle(&chain, &apps)?;
        while !chain.is_complete() {
            let ready = chain.ready_screens();
            // Bias toward dispatching while anything is ready, but retire
            // often enough that the in-flight set stays small.
            let dispatch = !ready.is_empty()
                && (running.is_empty() || splitmix64(&mut rng) % 3 != 0);
            if dispatch {
                let pick = ready[(splitmix64(&mut rng) as usize) % ready.len()];
                chain.mark_running(pick, running.len());
                running.push(pick);
            } else {
                prop_assert!(!running.is_empty(), "stalled: nothing ready, nothing running");
                let idx = (splitmix64(&mut rng) as usize) % running.len();
                let done = running.swap_remove(idx);
                t += 7;
                chain.mark_done(done, SimTime::from_us(t));
            }
            assert_frontier_matches_oracle(&chain, &apps)?;
        }
        prop_assert!(running.is_empty());
        prop_assert_eq!(chain.ready_count(), 0);
        prop_assert_eq!(chain.completed_screens(), chain.total_screens());
    }
}
