//! Shard-count invariance guard for the channel-sharded engine.
//!
//! The sharded read executor (`FlashBackbone::read_groups_sharded`) fans a
//! section read across per-channel event lanes and merges the effects back
//! at a window barrier in global submission order. That merge is designed to
//! be a *placement* merge — every cross-shard message lands at a dense,
//! precomputed sequence slot — so the simulated physics must be exactly the
//! serial loop's, for every shard count, including shard counts that do not
//! divide the channel count.
//!
//! This test pins that property end to end: the same small campaign as
//! `results_golden.rs` is run at `FA_SHARDS` ∈ {1, 2, 4, 7} and every
//! rendering must match the committed golden bytes. `FA_SHARDS` is set via
//! the process environment, which is safe here because each integration-test
//! file is its own process and `run_pairs_with_threads(.., 1)` keeps the
//! campaign single-threaded while the variable changes.

use fa_bench::report::Table;
use fa_bench::runner::{
    homogeneous_workload, run_pairs_with_threads, ExperimentScale, UnifiedOutcome,
};
use fa_kernel::model::Application;
use fa_workloads::polybench::PolyBench;
use std::path::PathBuf;

fn workloads() -> Vec<(String, Vec<Application>)> {
    let scale = ExperimentScale { data_scale: 512 };
    vec![
        (
            "GEMM".to_string(),
            homogeneous_workload(PolyBench::Gemm, scale),
        ),
        (
            "ATAX".to_string(),
            homogeneous_workload(PolyBench::Atax, scale),
        ),
    ]
}

fn render(outcomes: &[UnifiedOutcome]) -> String {
    let mut table = Table::new(
        "Golden campaign: homogeneous GEMM + ATAX at 1/512 scale",
        &[
            "Workload",
            "System",
            "total_s",
            "throughput_mb_s",
            "energy_j",
            "latency_avg_s",
            "completions",
        ],
    );
    for out in outcomes {
        table.row(vec![
            out.workload.clone(),
            out.system.label().to_string(),
            format!("{:.9}", out.total_seconds),
            format!("{:.6}", out.throughput_mb_s),
            format!("{:.6}", out.total_energy_j()),
            format!("{:.9}", out.latency_min_avg_max.1),
            format!("{}", out.completion_times.len()),
        ]);
    }
    table.render()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("small_campaign.txt")
}

#[test]
fn report_is_byte_identical_for_every_shard_count() {
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file must exist; this test never blesses it");
    let w = workloads();
    for shards in [1usize, 2, 4, 7] {
        std::env::set_var("FA_SHARDS", shards.to_string());
        let rendered = render(&run_pairs_with_threads(&w, 1));
        assert_eq!(
            rendered, golden,
            "FA_SHARDS={shards} campaign report diverged from the golden \
             bytes — the sharded executor is no longer replaying effects in \
             serial command order"
        );
    }
    std::env::remove_var("FA_SHARDS");
}
