//! Shard-count invariance guard for the channel-sharded engine.
//!
//! The sharded read executor (`FlashBackbone::read_groups_sharded`) fans a
//! section read across per-channel event lanes and merges the effects back
//! at a window barrier in global submission order. That merge is designed to
//! be a *placement* merge — every cross-shard message lands at a dense,
//! precomputed sequence slot — so the simulated physics must be exactly the
//! serial loop's, for every shard count, including shard counts that do not
//! divide the channel count.
//!
//! This file pins that property end to end: the same small campaign as
//! `results_golden.rs` is run at `FA_SHARDS` ∈ {1, 2, 4, 7} and every
//! rendering must match the committed golden bytes. A second test pins the
//! *fault* interaction: a read-affecting fault plan defeats the sharded
//! executor's fault-free precheck, so reads take the serial fallback and
//! the campaign must be byte-identical across shard counts even though it
//! no longer matches the fault-free golden. `FA_SHARDS`/`FA_FAULTS` are
//! set via the process environment; the tests serialize on `ENV_LOCK`
//! (they share one test process) and `run_pairs_with_threads(.., 1)`
//! keeps each campaign single-threaded while the variables change.

use fa_bench::report::Table;
use fa_bench::runner::{
    homogeneous_workload, run_pairs_with_threads, ExperimentScale, UnifiedOutcome,
};
use fa_kernel::model::Application;
use fa_workloads::polybench::PolyBench;
use std::path::PathBuf;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn workloads() -> Vec<(String, Vec<Application>)> {
    let scale = ExperimentScale { data_scale: 512 };
    vec![
        (
            "GEMM".to_string(),
            homogeneous_workload(PolyBench::Gemm, scale),
        ),
        (
            "ATAX".to_string(),
            homogeneous_workload(PolyBench::Atax, scale),
        ),
    ]
}

fn render(outcomes: &[UnifiedOutcome]) -> String {
    let mut table = Table::new(
        "Golden campaign: homogeneous GEMM + ATAX at 1/512 scale",
        &[
            "Workload",
            "System",
            "total_s",
            "throughput_mb_s",
            "energy_j",
            "latency_avg_s",
            "completions",
        ],
    );
    for out in outcomes {
        table.row(vec![
            out.workload.clone(),
            out.system.label().to_string(),
            format!("{:.9}", out.total_seconds),
            format!("{:.6}", out.throughput_mb_s),
            format!("{:.6}", out.total_energy_j()),
            format!("{:.9}", out.latency_min_avg_max.1),
            format!("{}", out.completion_times.len()),
        ]);
    }
    table.render()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("small_campaign.txt")
}

#[test]
fn report_is_byte_identical_for_every_shard_count() {
    let _env = ENV_LOCK.lock().unwrap();
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file must exist; this test never blesses it");
    let w = workloads();
    for shards in [1usize, 2, 4, 7] {
        std::env::set_var("FA_SHARDS", shards.to_string());
        let rendered = render(&run_pairs_with_threads(&w, 1));
        assert_eq!(
            rendered, golden,
            "FA_SHARDS={shards} campaign report diverged from the golden \
             bytes — the sharded executor is no longer replaying effects in \
             serial command order"
        );
    }
    std::env::remove_var("FA_SHARDS");
}

#[test]
fn fault_plan_serial_fallback_is_shard_count_invariant() {
    let _env = ENV_LOCK.lock().unwrap();
    // A read-affecting fault plan (read-disturb retries plus relocation)
    // makes `read_groups_sharded`'s fault-free precheck miss mid-section,
    // so every section read falls back to the serial loop. The physics
    // then differ from the fault-free golden, but they must not depend on
    // the shard count: the fallback is the same serial code at any
    // `FA_SHARDS`.
    std::env::set_var("FA_FAULTS", "seed=11,read_disturb=0.02");
    let w = workloads();
    let mut rendered = Vec::new();
    for shards in [1usize, 4] {
        std::env::set_var("FA_SHARDS", shards.to_string());
        rendered.push(render(&run_pairs_with_threads(&w, 1)));
    }
    std::env::remove_var("FA_FAULTS");
    std::env::remove_var("FA_SHARDS");
    assert_eq!(
        rendered[0], rendered[1],
        "a fault-afflicted campaign diverged between FA_SHARDS=1 and \
         FA_SHARDS=4 — the serial fallback is not shard-count invariant"
    );
}
