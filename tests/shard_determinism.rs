//! Shard-count invariance guard for the channel-sharded engine.
//!
//! The sharded read executor (`FlashBackbone::read_groups_sharded`) fans a
//! section read across per-channel event lanes and merges the effects back
//! at a window barrier in global submission order. That merge is designed to
//! be a *placement* merge — every cross-shard message lands at a dense,
//! precomputed sequence slot — so the simulated physics must be exactly the
//! serial loop's, for every shard count, including shard counts that do not
//! divide the channel count.
//!
//! This file pins that property end to end: the same small campaign as
//! `results_golden.rs` is run at `FA_SHARDS` ∈ {1, 2, 4, 7} and every
//! rendering must match the committed golden bytes. A second test pins the
//! *fault* interaction: a read-affecting fault plan defeats the sharded
//! executor's fault-free precheck, so reads take the serial fallback and
//! the campaign must be byte-identical across shard counts even though it
//! no longer matches the fault-free golden. `FA_SHARDS`/`FA_FAULTS` are
//! set via the process environment; the tests serialize on `ENV_LOCK`
//! (they share one test process) and `run_pairs_with_threads(.., 1)`
//! keeps each campaign single-threaded while the variables change.

use fa_bench::perf::{group_program_sweep, hot_path_backbone};
use fa_bench::report::Table;
use fa_bench::runner::{
    homogeneous_workload, run_pairs_with_threads, ExperimentScale, UnifiedOutcome,
};
use fa_kernel::model::Application;
use fa_platform::mem::Scratchpad;
use fa_platform::PlatformSpec;
use fa_sim::sharded::ShardPlan;
use fa_sim::time::SimTime;
use fa_workloads::polybench::PolyBench;
use flashabacus::config::FlashAbacusConfig;
use flashabacus::scheduler::SchedulerPolicy;
use flashabacus::storengine::Storengine;
use flashabacus::Flashvisor;
use std::path::PathBuf;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn workloads() -> Vec<(String, Vec<Application>)> {
    let scale = ExperimentScale { data_scale: 512 };
    vec![
        (
            "GEMM".to_string(),
            homogeneous_workload(PolyBench::Gemm, scale),
        ),
        (
            "ATAX".to_string(),
            homogeneous_workload(PolyBench::Atax, scale),
        ),
    ]
}

fn render(outcomes: &[UnifiedOutcome]) -> String {
    let mut table = Table::new(
        "Golden campaign: homogeneous GEMM + ATAX at 1/512 scale",
        &[
            "Workload",
            "System",
            "total_s",
            "throughput_mb_s",
            "energy_j",
            "latency_avg_s",
            "completions",
        ],
    );
    for out in outcomes {
        table.row(vec![
            out.workload.clone(),
            out.system.label().to_string(),
            format!("{:.9}", out.total_seconds),
            format!("{:.6}", out.throughput_mb_s),
            format!("{:.6}", out.total_energy_j()),
            format!("{:.9}", out.latency_min_avg_max.1),
            format!("{}", out.completion_times.len()),
        ]);
    }
    table.render()
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("small_campaign.txt")
}

#[test]
fn report_is_byte_identical_for_every_shard_count() {
    let _env = ENV_LOCK.lock().unwrap();
    let golden = std::fs::read_to_string(golden_path())
        .expect("golden file must exist; this test never blesses it");
    let w = workloads();
    for shards in [1usize, 2, 4, 7] {
        std::env::set_var("FA_SHARDS", shards.to_string());
        let rendered = render(&run_pairs_with_threads(&w, 1));
        assert_eq!(
            rendered, golden,
            "FA_SHARDS={shards} campaign report diverged from the golden \
             bytes — the sharded executor is no longer replaying effects in \
             serial command order"
        );
    }
    std::env::remove_var("FA_SHARDS");
}

/// One churn round on a small device, driven straight through Flashvisor
/// and Storengine: repeated overwrites of a narrow logical window (with
/// hot/cold separation live) interleaved with GC passes whenever the
/// allocator runs low. Every mutation rides the sharded write path —
/// placement forecast, program lanes, sharded GC erase rows — and the
/// digest captures every completion instant plus the full bookkeeping
/// totals, so a single reordered effect diverges the bytes.
fn churn_digest(shards: usize) -> String {
    let mut config = FlashAbacusConfig::tiny_for_tests(SchedulerPolicy::IntraO3);
    config.gc_low_watermark = 0.88;
    config.hot_overwrite_threshold = Some(3);
    let mut v = Flashvisor::new(config);
    v.set_shard_plan(ShardPlan::new(shards));
    let mut s = Storengine::new(config);
    let mut sp = Scratchpad::new(&PlatformSpec::paper_prototype());
    let group_bytes = config.page_group_bytes;
    let mut now_us = 1u64;
    let mut digest = String::new();
    let mut batches = 0u64;
    for round in 0..300u64 {
        let lg = round % 14;
        let groups = 1 + round % 3;
        now_us += 53;
        let c = v
            .write_section(
                SimTime::from_us(now_us),
                lg * group_bytes,
                groups * group_bytes,
                &mut sp,
            )
            .unwrap_or_else(|e| panic!("churn write round {round}: {e:?}"));
        digest.push_str(&format!("w {lg} {groups} {}\n", c.finished.as_ns()));
        batches += 1;
        while s.gc_needed(&v) {
            now_us += 211;
            let out = s
                .collect_garbage(SimTime::from_us(now_us), &mut v)
                .expect("churn gc");
            batches += 1;
            digest.push_str(&format!(
                "gc {} {} {}\n",
                out.groups_reclaimed,
                out.pages_migrated,
                out.finished.as_ns()
            ));
        }
    }
    let fv = v.stats();
    let se = s.stats();
    // The churn must actually exercise the sharded write/GC machinery:
    // no write section or erase row may have slipped onto the serial
    // fallback, GC must have erased rows, and the finite lookahead must
    // have split batches into multiple conservative windows.
    assert_eq!(
        fv.sharded_write_fallbacks, 0,
        "{shards} shards: churn fell off the sharded write path"
    );
    assert!(se.erases > 0, "{shards} shards: churn never erased a row");
    assert!(
        v.backbone().sharded_windows() > batches,
        "{shards} shards: no batch ever needed more than one window \
         ({} windows over {batches} batches)",
        v.backbone().sharded_windows()
    );
    digest.push_str(&format!(
        "stats {} {} {} {} {} {} {} {} {} {}\n",
        fv.group_writes,
        fv.overwritten_groups,
        fv.hot_group_writes,
        fv.cold_group_writes,
        fv.hot_steered_writes,
        fv.sharded_write_fallbacks,
        se.erases,
        se.groups_reclaimed,
        se.pages_migrated,
        v.backbone().sharded_windows()
    ));
    digest.push_str(&format!(
        "valid {} free {}\n",
        v.backbone().total_valid_pages(),
        v.free_physical_groups()
    ));
    digest
}

#[test]
fn churn_round_is_byte_identical_for_every_shard_count() {
    let baseline = churn_digest(1);
    for shards in [2usize, 4, 7] {
        assert_eq!(
            churn_digest(shards),
            baseline,
            "FA_SHARDS={shards}: a churn round diverged from the 1-shard \
             digest — the sharded write/GC path is not replaying effects in \
             serial submission order"
        );
    }
}

/// The finite program-sweep lookahead splits a section's program lanes
/// into many conservative windows; a `SimDuration::MAX` lookahead runs the
/// same events in a single window. Both must produce identical physics —
/// the window count is pure synchronization structure.
#[test]
fn program_sweep_multi_window_equals_one_window() {
    use fa_flash::OwnerId;
    use fa_sim::time::SimDuration;

    let pages = fa_bench::perf::SHARDED_SWEEP_GROUP_PAGES;
    let groups: Vec<(SimTime, u64)> = (0..96u64)
        .map(|g| (SimTime::from_ns(1_000 + g * 700), g * pages))
        .collect();
    let mut one = hot_path_backbone();
    let lookahead = one.program_sweep_lookahead();
    let plan = ShardPlan::new(4);
    let single = one.program_groups_sharded_with_lookahead(
        plan,
        &groups,
        pages,
        OwnerId::Kernel(0),
        SimDuration::MAX,
    );
    let mut multi = hot_path_backbone();
    let windowed = multi.program_groups_sharded_with_lookahead(
        plan,
        &groups,
        pages,
        OwnerId::Kernel(0),
        lookahead,
    );
    assert_eq!(one.sharded_windows(), 1);
    assert!(multi.sharded_windows() > 1);
    assert_eq!(single.finished, windowed.finished);
    assert_eq!(single.commands, windowed.commands);
    assert_eq!(one.total_valid_pages(), multi.total_valid_pages());
    assert_eq!(one.stats().programs, multi.stats().programs);

    // And the sweep helper agrees with the serial loop end to end while
    // completing more windows than sections.
    let mut serial = hot_path_backbone();
    let mut sharded = hot_path_backbone();
    let s = group_program_sweep(&mut serial, None, SimTime::ZERO);
    let h = group_program_sweep(&mut sharded, Some(plan), SimTime::ZERO);
    assert_eq!(s, h);
    assert!(sharded.sharded_windows() > h.1);
}

#[test]
fn fault_plan_serial_fallback_is_shard_count_invariant() {
    let _env = ENV_LOCK.lock().unwrap();
    // A read-affecting fault plan (read-disturb retries plus relocation)
    // makes `read_groups_sharded`'s fault-free precheck miss mid-section,
    // so every section read falls back to the serial loop. The physics
    // then differ from the fault-free golden, but they must not depend on
    // the shard count: the fallback is the same serial code at any
    // `FA_SHARDS`.
    std::env::set_var("FA_FAULTS", "seed=11,read_disturb=0.02");
    let w = workloads();
    let mut rendered = Vec::new();
    for shards in [1usize, 4] {
        std::env::set_var("FA_SHARDS", shards.to_string());
        rendered.push(render(&run_pairs_with_threads(&w, 1)));
    }
    std::env::remove_var("FA_FAULTS");
    std::env::remove_var("FA_SHARDS");
    assert_eq!(
        rendered[0], rendered[1],
        "a fault-afflicted campaign diverged between FA_SHARDS=1 and \
         FA_SHARDS=4 — the serial fallback is not shard-count invariant"
    );
}
